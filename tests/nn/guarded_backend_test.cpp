// Unit tests for the GuardedBackend policy wrapper: dispatch behaviour,
// sampling, stats plumbing, and polymorphic use inside an Mlp.

#include "nn/guarded_backend.h"

#include <gtest/gtest.h>

#include <memory>

#include "blas/gemm.h"
#include "nn/conv.h"
#include "nn/mlp.h"
#include "support/rng.h"

namespace apa::nn {
namespace {

BackendOptions small_cutoff(double lambda = 0.0) {
  BackendOptions options;
  if (lambda > 0.0) options.matmul.lambda = lambda;
  options.min_dim_for_fast = 32;
  return options;
}

TEST(GuardedBackend, ClassicalDispatchesAreNotChecked) {
  const GuardedBackend guarded("bini322", small_cutoff());
  Rng rng(1);
  Matrix<float> a(8, 8), b(8, 8), c(8, 8);  // below the fast cutoff
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  guarded.matmul(a.view().as_const(), b.view().as_const(), c.view());
  const GuardStats stats = guarded.stats();
  EXPECT_EQ(stats.fast_calls, 0u);
  EXPECT_EQ(stats.checks_run, 0u);
}

TEST(GuardedBackend, HonestFastPathMatchesUnguardedBackend) {
  const MatmulBackend plain("bini322", small_cutoff());
  const GuardedBackend guarded("bini322", small_cutoff());
  Rng rng(2);
  Matrix<float> a(48, 48), b(48, 48), c_plain(48, 48), c_guarded(48, 48);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  plain.matmul(a.view().as_const(), b.view().as_const(), c_plain.view());
  guarded.matmul(a.view().as_const(), b.view().as_const(), c_guarded.view());
  // No trip: the guarded backend returns the APA product bit-for-bit.
  EXPECT_EQ(max_abs_diff(c_plain.view(), c_guarded.view()), 0.0);
  EXPECT_EQ(guarded.stats().total_trips(), 0u);
}

TEST(GuardedBackend, CheckPeriodSamplesVerifications) {
  GuardPolicy policy;
  policy.check_period = 3;
  const GuardedBackend guarded("bini322", small_cutoff(), policy);
  Rng rng(3);
  Matrix<float> a(48, 48), b(48, 48), c(48, 48);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  for (int call = 0; call < 9; ++call) {
    guarded.matmul(a.view().as_const(), b.view().as_const(), c.view());
  }
  const GuardStats stats = guarded.stats();
  EXPECT_EQ(stats.fast_calls, 9u);
  EXPECT_EQ(stats.checks_run, 3u);  // calls 0, 3, 6
}

TEST(GuardedBackend, ResetStatsClearsCounters) {
  GuardedBackend guarded("bini322", small_cutoff(0.5));
  Rng rng(4);
  Matrix<float> a(48, 48), b(48, 48), c(48, 48);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  guarded.matmul(a.view().as_const(), b.view().as_const(), c.view());
  EXPECT_GT(guarded.stats().total_trips(), 0u);
  guarded.reset_stats();
  EXPECT_EQ(guarded.stats().total_trips(), 0u);
  EXPECT_EQ(guarded.stats().fast_calls, 0u);
}

TEST(GuardedBackend, SharedStateSurvivesCopies) {
  // Backends are copied by value into models; guard state must stay global so
  // trips observed through one copy quarantine the shape for all copies.
  GuardPolicy policy;
  policy.quarantine_after = 1;
  const GuardedBackend original("bini322", small_cutoff(0.5), policy);
  const GuardedBackend copy = original;
  Rng rng(5);
  Matrix<float> a(48, 48), b(48, 48), c(48, 48);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  copy.matmul(a.view().as_const(), b.view().as_const(), c.view());
  EXPECT_TRUE(original.is_quarantined(48, 48, 48));
  EXPECT_EQ(original.stats().total_trips(), 1u);
}

TEST(GuardedBackend, TransposedProductsAreVerifiedAndCorrected) {
  // dW = x^T dy is the backward-pass shape; a corrupt lambda there must be
  // caught through the transpose handling too.
  const GuardedBackend guarded("bini322", small_cutoff(0.5));
  Rng rng(6);
  Matrix<float> x(48, 40), dy(48, 56), dw(40, 56), ref(40, 56);
  fill_random_uniform<float>(x.view(), rng);
  fill_random_uniform<float>(dy.view(), rng);
  guarded.matmul(x.view().as_const(), dy.view().as_const(), dw.view(),
                 /*transpose_a=*/true);
  blas::gemm<float>(blas::Trans::kYes, blas::Trans::kNo, 40, 56, 48, 1.0f, x.data(),
                    x.ld(), dy.data(), dy.ld(), 0.0f, ref.data(), ref.ld());
  EXPECT_EQ(guarded.stats().trips_tolerance, 1u);
  EXPECT_LT(relative_frobenius_error(dw.view(), ref.view()), 1e-5);
}

TEST(GuardedBackend, FusedEpilogueAppliedAfterVerification) {
  // The guard certifies the raw product (epilogue held back), then folds the
  // epilogue in — honest path: identical to plain backend + separate pass.
  const MatmulBackend plain("bini322", small_cutoff());
  const GuardedBackend guarded("bini322", small_cutoff());
  Rng rng(8);
  Matrix<float> a(48, 48), b(48, 48), bias(1, 48), c_plain(48, 48), c_guarded(48, 48);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  fill_random_uniform<float>(bias.view(), rng);

  MatmulFusion fusion;
  fusion.epilogue.kind = blas::EpilogueKind::kBiasAddRelu;
  fusion.epilogue.bias = bias.data();
  guarded.matmul_ex(a.view().as_const(), b.view().as_const(), c_guarded.view(), false,
                    false, fusion);
  EXPECT_EQ(guarded.stats().checks_run, 1u);

  plain.matmul(a.view().as_const(), b.view().as_const(), c_plain.view());
  blas::apply_epilogue<float>(fusion.epilogue, c_plain.view());
  EXPECT_EQ(max_abs_diff(c_plain.view(), c_guarded.view()), 0.0);
}

TEST(GuardedBackend, FusedEpilogueAppliedAfterFallbackRerun) {
  // When the guard trips and reruns classically, the epilogue must be applied
  // to the corrected product exactly once.
  const GuardedBackend guarded("bini322", small_cutoff(0.5));  // corrupt lambda
  const MatmulBackend classical("classical");
  Rng rng(9);
  Matrix<float> a(48, 48), b(48, 48), bias(1, 48), c_guarded(48, 48), ref(48, 48);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  fill_random_uniform<float>(bias.view(), rng);

  MatmulFusion fusion;
  fusion.epilogue.kind = blas::EpilogueKind::kBiasAdd;
  fusion.epilogue.bias = bias.data();
  guarded.matmul_ex(a.view().as_const(), b.view().as_const(), c_guarded.view(), false,
                    false, fusion);
  EXPECT_EQ(guarded.stats().fallback_reruns, 1u);

  classical.matmul(a.view().as_const(), b.view().as_const(), ref.view());
  blas::apply_epilogue<float>(fusion.epilogue, ref.view());
  EXPECT_EQ(max_abs_diff(ref.view(), c_guarded.view()), 0.0);
}

// ---------------------------------------------------------------------------
// Conv fault injection: every matmul of a conv training step (forward
// product, dfilters, dx) must be Freivalds-verified, quarantined per-shape,
// and corrected by the exact-gemm fallback — restoring output bit-identical
// to the same ConvLayer run on a classical backend.
// ---------------------------------------------------------------------------

/// 4ch 8x8 -> 32ch, k3 s1 p1, batch 1. All three conv products then clear the
/// fast cutoff (32) with three DISTINCT gemm shapes:
///   forward  (rows, patch, out) = (64, 36, 32)
///   dfilters (patch, rows, out) = (36, 64, 32)
///   dx       (rows, out, patch) = (64, 32, 36)
ConvShape guard_conv_shape() {
  ConvShape s;
  s.in_channels = 4;
  s.in_height = 8;
  s.in_width = 8;
  s.out_channels = 32;
  s.kernel = 3;
  s.stride = 1;
  s.padding = 1;
  return s;
}

/// Policy that corrupts one entry of the raw APA product whenever the
/// dispatch shape matches (m, k, n), before the guard's verification probe.
/// A single entry (rather than a tile) keeps the Freivalds residual from ever
/// cancelling: a +-1 probe scales it by one nonzero weight, so a miss is
/// impossible rather than merely improbable.
GuardPolicy tile_fault_at(index_t m, index_t k, index_t n) {
  GuardPolicy policy;
  policy.check_period = 1;
  policy.inject_fault = [m, k, n](index_t cm, index_t ck, index_t cn,
                                  MatrixView<float> c) {
    if (cm == m && ck == k && cn == n) c(0, 0) += 1000.0f;
  };
  return policy;
}

/// Two ConvLayers with identical weights/bias plus a shared input batch.
struct ConvPair {
  static ConvLayer make_layer(const ConvShape& shape) {
    Rng rng(21);
    return ConvLayer(shape, rng);
  }

  ConvShape shape = guard_conv_shape();
  ConvLayer guarded_layer;
  ConvLayer classical_layer;
  Matrix<float> x;
  Matrix<float> dy;

  ConvPair()
      : guarded_layer(make_layer(shape)),
        classical_layer(make_layer(shape)),
        x(1, shape.in_size()),
        dy(1, shape.out_size()) {
    Rng rng(22);
    fill_random_uniform<float>(guarded_layer.mutable_bias().view(), rng, -0.5f, 0.5f);
    copy(guarded_layer.bias().view().as_const(), classical_layer.mutable_bias().view());
    fill_random_uniform<float>(x.view(), rng, -1.0f, 1.0f);
    fill_random_uniform<float>(dy.view(), rng, -1.0f, 1.0f);
  }
};

TEST(GuardedConv, ForwardFaultCaughtAndCorrected) {
  ConvPair pair;
  const GuardedBackend guarded("bini322", small_cutoff(), tile_fault_at(64, 36, 32));
  const MatmulBackend classical("classical");

  Matrix<float> y(1, pair.shape.out_size()), y_ref(1, pair.shape.out_size());
  pair.classical_layer.forward(pair.x.view().as_const(), y_ref.view(), classical,
                               /*fuse_relu=*/true);
  pair.guarded_layer.forward(pair.x.view().as_const(), y.view(), guarded,
                             /*fuse_relu=*/true);

  EXPECT_EQ(guarded.stats().trips_tolerance, 1u);
  EXPECT_EQ(guarded.stats().fallback_reruns, 1u);
  EXPECT_EQ(guarded.trips_for(64, 36, 32), 1);
  EXPECT_EQ(guarded.trips_for(36, 64, 32), 0);
  EXPECT_EQ(guarded.trips_for(64, 32, 36), 0);
  // The exact fallback reruns the held-back product classically and folds the
  // bias+ReLU epilogue in afterwards: bit-identical to the classical path.
  EXPECT_EQ(max_abs_diff(y.view(), y_ref.view()), 0.0);
}

TEST(GuardedConv, FilterGradientFaultCaughtAndCorrected) {
  ConvPair pair;
  const GuardedBackend guarded("bini322", small_cutoff(), tile_fault_at(36, 64, 32));
  const MatmulBackend classical("classical");

  pair.classical_layer.backward(pair.x.view().as_const(), pair.dy.view().as_const(),
                                nullptr, classical);
  pair.guarded_layer.backward(pair.x.view().as_const(), pair.dy.view().as_const(),
                              nullptr, guarded);

  EXPECT_EQ(guarded.trips_for(36, 64, 32), 1);
  EXPECT_EQ(guarded.trips_for(64, 36, 32), 0);
  EXPECT_EQ(guarded.stats().fallback_reruns, 1u);
  EXPECT_EQ(max_abs_diff(pair.guarded_layer.filter_grad().view(),
                         pair.classical_layer.filter_grad().view()),
            0.0);
  EXPECT_EQ(max_abs_diff(pair.guarded_layer.bias_grad().view(),
                         pair.classical_layer.bias_grad().view()),
            0.0);
}

TEST(GuardedConv, InputGradientFaultCaughtAndCorrected) {
  ConvPair pair;
  const GuardedBackend guarded("bini322", small_cutoff(), tile_fault_at(64, 32, 36));
  const MatmulBackend classical("classical");

  Matrix<float> dx(1, pair.shape.in_size()), dx_ref(1, pair.shape.in_size());
  MatrixView<float> dx_view = dx.view(), dx_ref_view = dx_ref.view();
  // relu_gate = x exercises the fused kReluGrad epilogue, which the guard must
  // hold back until the dx product itself is certified.
  pair.classical_layer.backward(pair.x.view().as_const(), pair.dy.view().as_const(),
                                &dx_ref_view, classical, pair.x.view().as_const());
  pair.guarded_layer.backward(pair.x.view().as_const(), pair.dy.view().as_const(),
                              &dx_view, guarded, pair.x.view().as_const());

  EXPECT_EQ(guarded.trips_for(64, 32, 36), 1);
  EXPECT_EQ(guarded.stats().fallback_reruns, 1u);
  EXPECT_EQ(max_abs_diff(dx.view(), dx_ref.view()), 0.0);
}

TEST(GuardedConv, QuarantineTripsPerShapeOnly) {
  ConvPair pair;
  GuardPolicy policy = tile_fault_at(64, 36, 32);
  policy.quarantine_after = 2;
  const GuardedBackend guarded("bini322", small_cutoff(), policy);
  const MatmulBackend classical("classical");

  Matrix<float> y(1, pair.shape.out_size()), y_ref(1, pair.shape.out_size());
  pair.classical_layer.forward(pair.x.view().as_const(), y_ref.view(), classical,
                               /*fuse_relu=*/true);

  pair.guarded_layer.forward(pair.x.view().as_const(), y.view(), guarded, true);
  EXPECT_EQ(guarded.trips_for(64, 36, 32), 1);
  EXPECT_FALSE(guarded.is_quarantined(64, 36, 32));

  pair.guarded_layer.forward(pair.x.view().as_const(), y.view(), guarded, true);
  EXPECT_EQ(guarded.trips_for(64, 36, 32), 2);
  EXPECT_TRUE(guarded.is_quarantined(64, 36, 32));
  EXPECT_EQ(guarded.stats().shapes_quarantined, 1u);

  // Third call routes the shape straight to exact gemm (no fast product, so
  // the injector never fires) and stays bit-identical.
  pair.guarded_layer.forward(pair.x.view().as_const(), y.view(), guarded, true);
  EXPECT_EQ(guarded.stats().quarantined_calls, 1u);
  EXPECT_EQ(guarded.trips_for(64, 36, 32), 2);
  EXPECT_EQ(max_abs_diff(y.view(), y_ref.view()), 0.0);

  // The backward shapes were never corrupted and stay un-quarantined.
  Matrix<float> dx(1, pair.shape.in_size());
  MatrixView<float> dx_view = dx.view();
  pair.guarded_layer.backward(pair.x.view().as_const(), pair.dy.view().as_const(),
                              &dx_view, guarded, pair.x.view().as_const());
  EXPECT_FALSE(guarded.is_quarantined(36, 64, 32));
  EXPECT_FALSE(guarded.is_quarantined(64, 32, 36));
}

TEST(GuardedBackend, PolymorphicUseInsideMlp) {
  // The shared_ptr constructor must preserve the wrapper: training through the
  // Mlp drives the guard, visible in its counters.
  auto guarded = std::make_shared<const GuardedBackend>("bini322", small_cutoff(0.5));
  MlpConfig config;
  config.layer_sizes = {40, 48, 48, 10};
  Mlp mlp(config, guarded, std::make_shared<const MatmulBackend>("classical"));

  Rng rng(7);
  Matrix<float> x(48, 40);
  fill_random_uniform<float>(x.view(), rng);
  std::vector<int> labels(48);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<int>(i % 10);
  (void)mlp.train_step(x.view().as_const(), labels);
  EXPECT_GT(guarded->stats().fast_calls, 0u);
  EXPECT_GT(guarded->stats().total_trips(), 0u);
}

}  // namespace
}  // namespace apa::nn
