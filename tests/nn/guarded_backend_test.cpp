// Unit tests for the GuardedBackend policy wrapper: dispatch behaviour,
// sampling, stats plumbing, and polymorphic use inside an Mlp.

#include "nn/guarded_backend.h"

#include <gtest/gtest.h>

#include <memory>

#include "blas/gemm.h"
#include "nn/mlp.h"
#include "support/rng.h"

namespace apa::nn {
namespace {

BackendOptions small_cutoff(double lambda = 0.0) {
  BackendOptions options;
  if (lambda > 0.0) options.matmul.lambda = lambda;
  options.min_dim_for_fast = 32;
  return options;
}

TEST(GuardedBackend, ClassicalDispatchesAreNotChecked) {
  const GuardedBackend guarded("bini322", small_cutoff());
  Rng rng(1);
  Matrix<float> a(8, 8), b(8, 8), c(8, 8);  // below the fast cutoff
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  guarded.matmul(a.view().as_const(), b.view().as_const(), c.view());
  const GuardStats stats = guarded.stats();
  EXPECT_EQ(stats.fast_calls, 0u);
  EXPECT_EQ(stats.checks_run, 0u);
}

TEST(GuardedBackend, HonestFastPathMatchesUnguardedBackend) {
  const MatmulBackend plain("bini322", small_cutoff());
  const GuardedBackend guarded("bini322", small_cutoff());
  Rng rng(2);
  Matrix<float> a(48, 48), b(48, 48), c_plain(48, 48), c_guarded(48, 48);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  plain.matmul(a.view().as_const(), b.view().as_const(), c_plain.view());
  guarded.matmul(a.view().as_const(), b.view().as_const(), c_guarded.view());
  // No trip: the guarded backend returns the APA product bit-for-bit.
  EXPECT_EQ(max_abs_diff(c_plain.view(), c_guarded.view()), 0.0);
  EXPECT_EQ(guarded.stats().total_trips(), 0u);
}

TEST(GuardedBackend, CheckPeriodSamplesVerifications) {
  GuardPolicy policy;
  policy.check_period = 3;
  const GuardedBackend guarded("bini322", small_cutoff(), policy);
  Rng rng(3);
  Matrix<float> a(48, 48), b(48, 48), c(48, 48);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  for (int call = 0; call < 9; ++call) {
    guarded.matmul(a.view().as_const(), b.view().as_const(), c.view());
  }
  const GuardStats stats = guarded.stats();
  EXPECT_EQ(stats.fast_calls, 9u);
  EXPECT_EQ(stats.checks_run, 3u);  // calls 0, 3, 6
}

TEST(GuardedBackend, ResetStatsClearsCounters) {
  GuardedBackend guarded("bini322", small_cutoff(0.5));
  Rng rng(4);
  Matrix<float> a(48, 48), b(48, 48), c(48, 48);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  guarded.matmul(a.view().as_const(), b.view().as_const(), c.view());
  EXPECT_GT(guarded.stats().total_trips(), 0u);
  guarded.reset_stats();
  EXPECT_EQ(guarded.stats().total_trips(), 0u);
  EXPECT_EQ(guarded.stats().fast_calls, 0u);
}

TEST(GuardedBackend, SharedStateSurvivesCopies) {
  // Backends are copied by value into models; guard state must stay global so
  // trips observed through one copy quarantine the shape for all copies.
  GuardPolicy policy;
  policy.quarantine_after = 1;
  const GuardedBackend original("bini322", small_cutoff(0.5), policy);
  const GuardedBackend copy = original;
  Rng rng(5);
  Matrix<float> a(48, 48), b(48, 48), c(48, 48);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  copy.matmul(a.view().as_const(), b.view().as_const(), c.view());
  EXPECT_TRUE(original.is_quarantined(48, 48, 48));
  EXPECT_EQ(original.stats().total_trips(), 1u);
}

TEST(GuardedBackend, TransposedProductsAreVerifiedAndCorrected) {
  // dW = x^T dy is the backward-pass shape; a corrupt lambda there must be
  // caught through the transpose handling too.
  const GuardedBackend guarded("bini322", small_cutoff(0.5));
  Rng rng(6);
  Matrix<float> x(48, 40), dy(48, 56), dw(40, 56), ref(40, 56);
  fill_random_uniform<float>(x.view(), rng);
  fill_random_uniform<float>(dy.view(), rng);
  guarded.matmul(x.view().as_const(), dy.view().as_const(), dw.view(),
                 /*transpose_a=*/true);
  blas::gemm<float>(blas::Trans::kYes, blas::Trans::kNo, 40, 56, 48, 1.0f, x.data(),
                    x.ld(), dy.data(), dy.ld(), 0.0f, ref.data(), ref.ld());
  EXPECT_EQ(guarded.stats().trips_tolerance, 1u);
  EXPECT_LT(relative_frobenius_error(dw.view(), ref.view()), 1e-5);
}

TEST(GuardedBackend, FusedEpilogueAppliedAfterVerification) {
  // The guard certifies the raw product (epilogue held back), then folds the
  // epilogue in — honest path: identical to plain backend + separate pass.
  const MatmulBackend plain("bini322", small_cutoff());
  const GuardedBackend guarded("bini322", small_cutoff());
  Rng rng(8);
  Matrix<float> a(48, 48), b(48, 48), bias(1, 48), c_plain(48, 48), c_guarded(48, 48);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  fill_random_uniform<float>(bias.view(), rng);

  MatmulFusion fusion;
  fusion.epilogue.kind = blas::EpilogueKind::kBiasAddRelu;
  fusion.epilogue.bias = bias.data();
  guarded.matmul_ex(a.view().as_const(), b.view().as_const(), c_guarded.view(), false,
                    false, fusion);
  EXPECT_EQ(guarded.stats().checks_run, 1u);

  plain.matmul(a.view().as_const(), b.view().as_const(), c_plain.view());
  blas::apply_epilogue<float>(fusion.epilogue, c_plain.view());
  EXPECT_EQ(max_abs_diff(c_plain.view(), c_guarded.view()), 0.0);
}

TEST(GuardedBackend, FusedEpilogueAppliedAfterFallbackRerun) {
  // When the guard trips and reruns classically, the epilogue must be applied
  // to the corrected product exactly once.
  const GuardedBackend guarded("bini322", small_cutoff(0.5));  // corrupt lambda
  const MatmulBackend classical("classical");
  Rng rng(9);
  Matrix<float> a(48, 48), b(48, 48), bias(1, 48), c_guarded(48, 48), ref(48, 48);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  fill_random_uniform<float>(bias.view(), rng);

  MatmulFusion fusion;
  fusion.epilogue.kind = blas::EpilogueKind::kBiasAdd;
  fusion.epilogue.bias = bias.data();
  guarded.matmul_ex(a.view().as_const(), b.view().as_const(), c_guarded.view(), false,
                    false, fusion);
  EXPECT_EQ(guarded.stats().fallback_reruns, 1u);

  classical.matmul(a.view().as_const(), b.view().as_const(), ref.view());
  blas::apply_epilogue<float>(fusion.epilogue, ref.view());
  EXPECT_EQ(max_abs_diff(ref.view(), c_guarded.view()), 0.0);
}

TEST(GuardedBackend, PolymorphicUseInsideMlp) {
  // The shared_ptr constructor must preserve the wrapper: training through the
  // Mlp drives the guard, visible in its counters.
  auto guarded = std::make_shared<const GuardedBackend>("bini322", small_cutoff(0.5));
  MlpConfig config;
  config.layer_sizes = {40, 48, 48, 10};
  Mlp mlp(config, guarded, std::make_shared<const MatmulBackend>("classical"));

  Rng rng(7);
  Matrix<float> x(48, 40);
  fill_random_uniform<float>(x.view(), rng);
  std::vector<int> labels(48);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<int>(i % 10);
  (void)mlp.train_step(x.view().as_const(), labels);
  EXPECT_GT(guarded->stats().fast_calls, 0u);
  EXPECT_GT(guarded->stats().total_trips(), 0u);
}

}  // namespace
}  // namespace apa::nn
