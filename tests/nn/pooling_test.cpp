#include "nn/pooling.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace apa::nn {
namespace {

PoolShape small_shape() {
  PoolShape s;
  s.channels = 2;
  s.in_height = 4;
  s.in_width = 4;
  return s;  // 2x2 window, stride 2 -> 2x2 output per channel
}

TEST(PoolShape, OutputDims) {
  const PoolShape s = small_shape();
  EXPECT_EQ(s.out_height(), 2);
  EXPECT_EQ(s.out_width(), 2);
  EXPECT_EQ(s.in_size(), 32);
  EXPECT_EQ(s.out_size(), 8);
  PoolShape odd = s;
  odd.in_height = 5;
  EXPECT_EQ(odd.out_height(), 2);  // trailing row dropped
}

TEST(MaxPool, ForwardPicksWindowMaxima) {
  const PoolShape s = small_shape();
  MaxPoolLayer layer(s);
  Matrix<float> x(1, s.in_size()), y(1, s.out_size());
  for (index_t i = 0; i < s.in_size(); ++i) x(0, i) = static_cast<float>(i);
  layer.forward(x.view().as_const(), y.view());
  // Channel 0: rows 0-3 cols 0-3 of values 0..15; window maxima are 5,7,13,15.
  EXPECT_EQ(y(0, 0), 5.0f);
  EXPECT_EQ(y(0, 1), 7.0f);
  EXPECT_EQ(y(0, 2), 13.0f);
  EXPECT_EQ(y(0, 3), 15.0f);
  // Channel 1 is offset by 16.
  EXPECT_EQ(y(0, 4), 21.0f);
}

TEST(MaxPool, NegativeInputsHandled) {
  PoolShape s = small_shape();
  s.channels = 1;
  MaxPoolLayer layer(s);
  Matrix<float> x(1, s.in_size()), y(1, s.out_size());
  for (auto& v : x.span()) v = -5.0f;
  x(0, 5) = -1.0f;
  layer.forward(x.view().as_const(), y.view());
  EXPECT_EQ(y(0, 0), -1.0f);
  EXPECT_EQ(y(0, 1), -5.0f);
}

TEST(MaxPool, BackwardRoutesGradientToArgmax) {
  PoolShape s = small_shape();
  s.channels = 1;
  MaxPoolLayer layer(s);
  Matrix<float> x(1, s.in_size()), y(1, s.out_size());
  for (index_t i = 0; i < s.in_size(); ++i) x(0, i) = static_cast<float>(i);
  layer.forward(x.view().as_const(), y.view());

  Matrix<float> dy(1, s.out_size()), dx(1, s.in_size());
  for (index_t j = 0; j < s.out_size(); ++j) dy(0, j) = static_cast<float>(j + 1);
  layer.backward(dy.view().as_const(), dx.view());
  // Argmaxes for ascending input: 5, 7, 13, 15.
  EXPECT_EQ(dx(0, 5), 1.0f);
  EXPECT_EQ(dx(0, 7), 2.0f);
  EXPECT_EQ(dx(0, 13), 3.0f);
  EXPECT_EQ(dx(0, 15), 4.0f);
  // Everything else zero.
  double total = 0;
  for (float v : dx.span()) total += v;
  EXPECT_DOUBLE_EQ(total, 1 + 2 + 3 + 4);
}

TEST(MaxPool, GradientSumPreserved) {
  const PoolShape s = small_shape();
  MaxPoolLayer layer(s);
  Rng rng(3);
  Matrix<float> x(3, s.in_size()), y(3, s.out_size());
  fill_random_uniform<float>(x.view(), rng);
  layer.forward(x.view().as_const(), y.view());
  Matrix<float> dy(3, s.out_size()), dx(3, s.in_size());
  fill_random_uniform<float>(dy.view(), rng);
  layer.backward(dy.view().as_const(), dx.view());
  double sum_dy = 0, sum_dx = 0;
  for (float v : dy.span()) sum_dy += v;
  for (float v : dx.span()) sum_dx += v;
  EXPECT_NEAR(sum_dx, sum_dy, 1e-4);
}

TEST(MaxPool, BackwardWithoutForwardThrows) {
  MaxPoolLayer layer(small_shape());
  Matrix<float> dy(1, small_shape().out_size()), dx(1, small_shape().in_size());
  EXPECT_THROW(layer.backward(dy.view().as_const(), dx.view()), std::logic_error);
}

TEST(MaxPool, InvalidShapeRejected) {
  PoolShape s = small_shape();
  s.in_height = 1;  // smaller than the window
  EXPECT_THROW(MaxPoolLayer{s}, std::logic_error);
}

}  // namespace
}  // namespace apa::nn
