#include "nn/vgg.h"

#include <gtest/gtest.h>

namespace apa::nn {
namespace {

VggFcConfig tiny_config() {
  // Scaled-down head (same 3-layer topology) so the test is fast.
  VggFcConfig config;
  config.conv_features = 64;
  config.fc_width = 32;
  config.num_classes = 10;
  return config;
}

TEST(VggFc, TopologyMatchesPaper) {
  auto head = make_vgg_fc_head(tiny_config(), MatmulBackend("classical"),
                               MatmulBackend("classical"));
  ASSERT_EQ(head.num_dense_layers(), 3);
  EXPECT_EQ(head.input_size(), 64);
  EXPECT_EQ(head.layer(0).out_features(), 32);
  EXPECT_EQ(head.layer(1).out_features(), 32);
  EXPECT_EQ(head.output_size(), 10);
}

TEST(VggFc, AllLayersUseFastBackend) {
  auto head = make_vgg_fc_head(tiny_config(), MatmulBackend("fast442"),
                               MatmulBackend("classical"));
  for (index_t i = 0; i < head.num_dense_layers(); ++i) {
    EXPECT_TRUE(head.layer_uses_fast(i)) << "layer " << i;
  }
}

TEST(VggFc, DefaultDimensionsAreVgg19) {
  const VggFcConfig config;
  EXPECT_EQ(config.conv_features, 25088);  // 7*7*512
  EXPECT_EQ(config.fc_width, 4096);
  EXPECT_EQ(config.num_classes, 1000);
}

TEST(VggFc, TimedStepRunsAndIsPositive) {
  auto head = make_vgg_fc_head(tiny_config(), MatmulBackend("fast442"),
                               MatmulBackend("classical"));
  const double seconds = time_vgg_fc_step(head, /*batch=*/16, /*reps=*/3);
  EXPECT_GT(seconds, 0.0);
  EXPECT_LT(seconds, 5.0);
}

TEST(VggFc, TrainingStepReducesLossOnFixedBatch) {
  auto head = make_vgg_fc_head(tiny_config(), MatmulBackend("classical"),
                               MatmulBackend("classical"));
  Rng rng(3);
  Matrix<float> x(8, 64);
  fill_random_uniform<float>(x.view(), rng, 0.0f, 1.0f);
  std::vector<int> labels = {0, 1, 2, 3, 4, 5, 6, 7};
  const double first = head.train_step(x.view().as_const(), labels);
  double last = first;
  for (int i = 0; i < 30; ++i) last = head.train_step(x.view().as_const(), labels);
  EXPECT_LT(last, first);  // memorizes the fixed batch
}

}  // namespace
}  // namespace apa::nn
