#include "core/designer.h"

#include <gtest/gtest.h>

#include "core/params.h"

namespace apa::core {
namespace {

TEST(Designer, TrivialDimsGiveClassical) {
  const Rule r = design(1, 1, 1);
  EXPECT_EQ(r.rank, 1);
  EXPECT_TRUE(validate(r).exact);
}

TEST(Designer, FindsStrassenFor222) {
  const Rule r = design(2, 2, 2);
  EXPECT_EQ(r.rank, 7);
  EXPECT_TRUE(validate(r).valid);
}

TEST(Designer, FindsBiniFor322) {
  const Rule r = design(3, 2, 2);
  EXPECT_EQ(r.rank, 10);
  const Validation v = validate(r);
  EXPECT_TRUE(v.valid);
  EXPECT_FALSE(v.exact);
}

TEST(Designer, ExactOnlyExcludesApaBases) {
  const Rule r = design(3, 2, 2, {.allow_apa = false});
  EXPECT_TRUE(validate(r).exact);
  EXPECT_EQ(r.rank, 11);  // strassen (+) classical<1,2,2>
}

TEST(Designer, TensorPathFindsStrassenSquared) {
  const Rule r = design(4, 4, 4);
  EXPECT_EQ(r.rank, 49);
  EXPECT_TRUE(validate(r).exact);
}

TEST(Designer, RespectsRequestedDimensionOrder) {
  const Rule r = design(2, 3, 2);
  EXPECT_EQ(r.m, 2);
  EXPECT_EQ(r.k, 3);
  EXPECT_EQ(r.n, 2);
  EXPECT_EQ(r.rank, 10);  // permuted Bini
  EXPECT_TRUE(validate(r).valid);
}

TEST(Designer, KnownRanksForPaperDims) {
  // Locked-in DP results; a regression here means the search space or the
  // cost function changed.
  EXPECT_EQ(design_summary(4, 2, 2).rank, 14);
  EXPECT_EQ(design_summary(3, 3, 2).rank, 16);
  EXPECT_EQ(design_summary(5, 2, 2).rank, 17);
  EXPECT_EQ(design_summary(3, 3, 3).rank, 25);
  EXPECT_EQ(design_summary(7, 2, 2).rank, 24);
  EXPECT_EQ(design_summary(4, 4, 2).rank, 28);
  EXPECT_EQ(design_summary(4, 3, 3).rank, 32);
  EXPECT_EQ(design_summary(5, 5, 2).rank, 43);
  EXPECT_EQ(design_summary(5, 5, 5).rank, 110);
}

TEST(Designer, ApaNeverWorseThanExact) {
  for (index_t m = 1; m <= 5; ++m) {
    for (index_t k = 1; k <= 4; ++k) {
      for (index_t n = 1; n <= 4; ++n) {
        const index_t apa_rank = design_summary(m, k, n).rank;
        const index_t exact_rank = design_summary(m, k, n, {.allow_apa = false}).rank;
        EXPECT_LE(apa_rank, exact_rank) << m << "," << k << "," << n;
        EXPECT_LE(apa_rank, m * k * n) << "never worse than classical";
      }
    }
  }
}

TEST(Designer, AllSmallDesignsAreValidRules) {
  for (index_t m = 1; m <= 4; ++m) {
    for (index_t k = 1; k <= 4; ++k) {
      for (index_t n = 1; n <= 4; ++n) {
        const Rule r = design(m, k, n);
        EXPECT_EQ(r.m, m);
        EXPECT_EQ(r.k, k);
        EXPECT_EQ(r.n, n);
        const Validation v = validate(r);
        EXPECT_TRUE(v.valid) << r.name << ": " << v.message;
      }
    }
  }
}

TEST(Designer, ExactOnlyDesignsAreExact) {
  for (index_t d = 1; d <= 6; ++d) {
    const Rule r = design(d, d, 2, {.allow_apa = false});
    EXPECT_TRUE(validate(r).exact) << r.name;
  }
}

TEST(Designer, LargerDimsStayBelowClassical) {
  // Beyond Table 1: the search keeps finding sub-classical constructions.
  EXPECT_EQ(design_summary(6, 6, 6).rank, 160);  // direct sums of bini pieces
  EXPECT_LT(design_summary(7, 7, 7).rank, 343);
  EXPECT_LT(design_summary(8, 8, 8).rank, 512);
  EXPECT_EQ(design_summary(8, 8, 8, {.allow_apa = false}).rank, 343);  // strassen^3
}

TEST(Designer, VolumeGuardThrows) {
  EXPECT_THROW((void)design(20, 20, 20, {.max_volume = 100}), std::logic_error);
}

TEST(Designer, SymmetricDimsShareRank) {
  EXPECT_EQ(design_summary(3, 2, 2).rank, design_summary(2, 3, 2).rank);
  EXPECT_EQ(design_summary(2, 3, 2).rank, design_summary(2, 2, 3).rank);
  EXPECT_EQ(design_summary(4, 3, 3).rank, design_summary(3, 4, 3).rank);
}

}  // namespace
}  // namespace apa::core
