#include "core/catalog.h"

#include <gtest/gtest.h>

#include "core/params.h"

namespace apa::core {
namespace {

TEST(Catalog, StrassenIsExactRankSeven) {
  const Rule rule = strassen();
  EXPECT_EQ(rule.rank, 7);
  const Validation v = validate(rule);
  ASSERT_TRUE(v.valid) << v.message;
  EXPECT_TRUE(v.exact);
}

TEST(Catalog, WinogradIsExactRankSeven) {
  const Rule rule = winograd();
  EXPECT_EQ(rule.rank, 7);
  const Validation v = validate(rule);
  ASSERT_TRUE(v.valid) << v.message;
  EXPECT_TRUE(v.exact);
}

TEST(Catalog, WinogradHasFewerOutputNonzerosThanStrassenInputs) {
  // The Winograd variant trades U/V structure for fewer total additions;
  // structural sanity: both rank 7, different nonzero profile.
  EXPECT_NE(winograd().nnz_inputs() + winograd().nnz_outputs(),
            strassen().nnz_inputs() + strassen().nnz_outputs());
}

TEST(Catalog, Bini322IsValidApaSigmaOne) {
  const Rule rule = bini322();
  EXPECT_EQ(rule.m, 3);
  EXPECT_EQ(rule.k, 2);
  EXPECT_EQ(rule.n, 2);
  EXPECT_EQ(rule.rank, 10);
  const Validation v = validate(rule);
  ASSERT_TRUE(v.valid) << v.message;
  EXPECT_FALSE(v.exact);
  EXPECT_EQ(v.sigma, 1);  // paper Table 1
  EXPECT_EQ(compute_phi(rule), 1);
}

TEST(Catalog, Bini322FirstEntryErrorTermMatchesPaper) {
  // Paper: C11_hat = A11*B11 + A12*B21 - lambda*A12*B11, i.e. the residual of
  // the Brent product for (A12, B11, C11) is exactly -lambda.
  const Rule rule = bini322();
  LaurentPoly f;
  for (index_t l = 0; l < rule.rank; ++l) {
    f += rule.U(0, 1, l) * rule.V(0, 0, l) * rule.W(0, 0, l);
  }
  EXPECT_EQ(f.coefficient(0), Rational(0));   // no exact contribution
  EXPECT_EQ(f.coefficient(1), Rational(-1));  // -lambda * A12 * B11
}

TEST(Catalog, ClassicalMatchesAnalyzedParams) {
  const AlgorithmParams p = analyze(classical(3, 4, 5));
  EXPECT_TRUE(p.exact);
  EXPECT_EQ(p.rank, 60);
  EXPECT_DOUBLE_EQ(p.speedup, 0.0);
  EXPECT_EQ(p.phi, 0);
}

TEST(Catalog, AnalyzeBiniMatchesPaperTable1) {
  const AlgorithmParams p = analyze(bini322());
  EXPECT_EQ(p.sigma, 1);
  EXPECT_EQ(p.phi, 1);
  EXPECT_NEAR(p.speedup, 0.20, 1e-12);
  // Table 1 reports error 3.5e-4 for single precision (2^-11.5).
  EXPECT_NEAR(p.predicted_error(kPrecisionBitsSingle, 1), 3.5e-4, 0.5e-4);
  // Optimal lambda is 2^-11.5.
  EXPECT_NEAR(p.optimal_lambda(kPrecisionBitsSingle, 1), std::exp2(-11.5), 1e-6);
}

TEST(Catalog, PredictedErrorDoubleVsSingle) {
  const AlgorithmParams p = analyze(bini322());
  EXPECT_LT(p.predicted_error(kPrecisionBitsDouble, 1),
            p.predicted_error(kPrecisionBitsSingle, 1));
}

TEST(Catalog, MoreRecursiveStepsWeakenErrorBound) {
  const AlgorithmParams p = analyze(bini322());
  EXPECT_GT(p.predicted_error(kPrecisionBitsSingle, 2),
            p.predicted_error(kPrecisionBitsSingle, 1));
  EXPECT_GT(p.optimal_lambda(kPrecisionBitsSingle, 2),
            p.optimal_lambda(kPrecisionBitsSingle, 1));
}

}  // namespace
}  // namespace apa::core
