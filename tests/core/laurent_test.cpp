#include "core/laurent.h"

#include <gtest/gtest.h>

namespace apa::core {
namespace {

TEST(LaurentPoly, DefaultIsZero) {
  LaurentPoly p;
  EXPECT_TRUE(p.is_zero());
  EXPECT_TRUE(p.is_constant());
  EXPECT_EQ(p.to_string(), "0");
}

TEST(LaurentPoly, ConstantConstruction) {
  LaurentPoly p(Rational(3, 2));
  EXPECT_TRUE(p.is_constant());
  EXPECT_EQ(p.constant_term(), Rational(3, 2));
  EXPECT_EQ(p.min_degree(), 0);
  EXPECT_EQ(p.max_degree(), 0);
}

TEST(LaurentPoly, ZeroCoefficientMonomialIsZero) {
  EXPECT_TRUE(LaurentPoly::monomial(Rational(0), 5).is_zero());
}

TEST(LaurentPoly, MonomialDegrees) {
  const auto p = LaurentPoly::monomial(Rational(2), -3);
  EXPECT_EQ(p.min_degree(), -3);
  EXPECT_EQ(p.max_degree(), -3);
  EXPECT_EQ(p.coefficient(-3), Rational(2));
  EXPECT_EQ(p.coefficient(0), Rational(0));
}

TEST(LaurentPoly, AdditionMergesAndCancels) {
  const auto a = LaurentPoly::lambda(1) + LaurentPoly(1);
  const auto b = LaurentPoly::monomial(Rational(-1), 1) + LaurentPoly(2);
  const auto sum = a + b;
  EXPECT_TRUE(sum.is_constant());
  EXPECT_EQ(sum.constant_term(), Rational(3));
}

TEST(LaurentPoly, SubtractionToZero) {
  const auto p = LaurentPoly::lambda(2) + LaurentPoly::lambda(-1);
  EXPECT_TRUE((p - p).is_zero());
}

TEST(LaurentPoly, MultiplicationAddsDegrees) {
  // (L + L^-1)^2 = L^2 + 2 + L^-2
  const auto p = LaurentPoly::lambda(1) + LaurentPoly::lambda(-1);
  const auto sq = p * p;
  EXPECT_EQ(sq.coefficient(2), Rational(1));
  EXPECT_EQ(sq.coefficient(0), Rational(2));
  EXPECT_EQ(sq.coefficient(-2), Rational(1));
  EXPECT_EQ(sq.min_degree(), -2);
  EXPECT_EQ(sq.max_degree(), 2);
}

TEST(LaurentPoly, MultiplicationCancellation) {
  // (L - 1)(L + 1) = L^2 - 1
  const auto a = LaurentPoly::lambda(1) - LaurentPoly(1);
  const auto b = LaurentPoly::lambda(1) + LaurentPoly(1);
  const auto prod = a * b;
  EXPECT_EQ(prod.coefficient(1), Rational(0));
  EXPECT_EQ(prod.coefficient(2), Rational(1));
  EXPECT_EQ(prod.coefficient(0), Rational(-1));
}

TEST(LaurentPoly, EvaluateMatchesHorner) {
  // p = 2*L^-1 - 3 + L^2 at L = 0.5 -> 4 - 3 + 0.25 = 1.25
  const auto p = LaurentPoly::monomial(Rational(2), -1) + LaurentPoly(Rational(-3)) +
                 LaurentPoly::lambda(2);
  EXPECT_DOUBLE_EQ(p.evaluate(0.5), 1.25);
}

TEST(LaurentPoly, Shifted) {
  const auto p = LaurentPoly(1) + LaurentPoly::lambda(1);
  const auto s = p.shifted(-1);
  EXPECT_EQ(s.coefficient(-1), Rational(1));
  EXPECT_EQ(s.coefficient(0), Rational(1));
}

TEST(LaurentPoly, Negation) {
  const auto p = LaurentPoly::monomial(Rational(1, 2), 1);
  EXPECT_EQ((-p).coefficient(1), Rational(-1, 2));
  EXPECT_TRUE((p + -p).is_zero());
}

TEST(LaurentPoly, ToStringFormats) {
  const auto p = LaurentPoly(1) - LaurentPoly::monomial(Rational(2), -1) +
                 LaurentPoly::monomial(Rational(1, 2), 2);
  EXPECT_EQ(p.to_string(), "-2*L^-1 + 1 + 1/2*L^2");
  EXPECT_EQ(LaurentPoly::lambda(1).to_string(), "L");
}

TEST(LaurentPoly, MinDegreeOfZeroThrows) {
  LaurentPoly zero;
  EXPECT_THROW((void)zero.min_degree(), std::logic_error);
}

TEST(LaurentPoly, CompoundOps) {
  LaurentPoly p(1);
  p += LaurentPoly::lambda(1);
  p *= LaurentPoly::lambda(-1);
  // (1 + L) * L^-1 = L^-1 + 1
  EXPECT_EQ(p.coefficient(-1), Rational(1));
  EXPECT_EQ(p.coefficient(0), Rational(1));
  p -= LaurentPoly::lambda(-1);
  EXPECT_TRUE(p.is_constant());
}

}  // namespace
}  // namespace apa::core
