// Property-based tests: randomized compositions of the rule combinators and
// randomized executor shapes, checking the invariants the theory guarantees.

#include <gtest/gtest.h>

#include <vector>

#include "blas/gemm.h"
#include "core/catalog.h"
#include "core/executor.h"
#include "core/params.h"
#include "core/registry.h"
#include "core/transforms.h"
#include "support/rng.h"

namespace apa::core {
namespace {

Rule random_base(Rng& rng) {
  switch (rng.next_below(4)) {
    case 0: return strassen();
    case 1: return winograd();
    case 2: return bini322();
    default:
      return classical(1 + rng.next_below(2), 1 + rng.next_below(2),
                       1 + rng.next_below(2));
  }
}

/// Applies a random combinator to (a, b); returns a when shapes don't permit.
Rule random_compose(const Rule& a, const Rule& b, Rng& rng) {
  switch (rng.next_below(5)) {
    case 0:
      if (a.k == b.k && a.n == b.n) return direct_sum_m(a, b);
      return a;
    case 1:
      if (a.m == b.m && a.n == b.n) return direct_sum_k(a, b);
      return a;
    case 2:
      if (a.m == b.m && a.k == b.k) return direct_sum_n(a, b);
      return a;
    case 3:
      // Cap the tensor size so validation stays fast.
      if (a.m * b.m * a.k * b.k * a.n * b.n <= 200) return tensor_product(a, b);
      return a;
    default:
      return permute_rule(a, static_cast<int>(rng.next_below(6)));
  }
}

TEST(Property, RandomCombinatorCompositionsStayValid) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    Rule rule = random_base(rng);
    const int depth = 1 + static_cast<int>(rng.next_below(3));
    for (int step = 0; step < depth; ++step) {
      Rule other = random_base(rng);
      // Randomly permute the operand to increase shape-match chances.
      other = permute_rule(other, static_cast<int>(rng.next_below(6)));
      rule = random_compose(rule, other, rng);
      if (rule.m * rule.k * rule.n > 250) break;  // keep Brent check cheap
    }
    const Validation v = validate(rule);
    ASSERT_TRUE(v.valid) << "trial " << trial << ": " << rule.name << ": " << v.message;
    if (!v.exact) {
      EXPECT_EQ(v.sigma, 1) << rule.name;  // all APA bases have sigma = 1
    }
    EXPECT_LE(rule.rank, rule.m * rule.k * rule.n)
        << rule.name << ": combinators never exceed classical rank of the result";
  }
}

TEST(Property, PhiIsAdditiveUnderTensorProducts) {
  const std::vector<Rule> bases = {strassen(), bini322(), permute_rule(bini322(), 1),
                                   classical(2, 1, 2)};
  for (const Rule& a : bases) {
    for (const Rule& b : bases) {
      if (a.m * b.m * a.k * b.k * a.n * b.n > 300) continue;
      const Rule t = tensor_product(a, b);
      EXPECT_EQ(compute_phi(t), compute_phi(a) + compute_phi(b))
          << a.name << " x " << b.name;
    }
  }
}

TEST(Property, PhiIsMaxUnderDirectSums) {
  const Rule mixed = direct_sum_m(bini322(), classical(1, 2, 2));
  EXPECT_EQ(compute_phi(mixed), std::max(compute_phi(bini322()), 0));
  const Rule both = direct_sum_m(bini322(), bini322());
  EXPECT_EQ(compute_phi(both), compute_phi(bini322()));
}

TEST(Property, SpeedupMonotoneInRankForFixedDims) {
  // Among registry rules with identical dims, lower rank => higher speedup.
  const auto& a = rule_by_name("strassen");
  const auto& b = rule_by_name("winograd");
  EXPECT_DOUBLE_EQ(a.theoretical_speedup(), b.theoretical_speedup());
  EXPECT_GT(rule_by_name("bini322").theoretical_speedup(),
            rule_by_name("apa422").theoretical_speedup() - 1e-12);
}

TEST(Property, ExecutorRandomShapesAgainstReference) {
  Rng rng(77);
  const auto names = algorithm_names();
  for (int trial = 0; trial < 12; ++trial) {
    const std::string& algo =
        names[static_cast<std::size_t>(rng.next_below(names.size()))];
    const Rule& rule = rule_by_name(algo);
    const AlgorithmParams params = analyze(rule);
    const index_t m = 8 + static_cast<index_t>(rng.next_below(120));
    const index_t k = 8 + static_cast<index_t>(rng.next_below(120));
    const index_t n = 8 + static_cast<index_t>(rng.next_below(120));

    Matrix<double> a(m, k), b(k, n), c(m, n), ref(m, n);
    fill_random_uniform<double>(a.view(), rng);
    fill_random_uniform<double>(b.view(), rng);
    blas::gemm<double>(a.view(), b.view(), ref.view());
    multiply<double>(rule, a.view().as_const(), b.view().as_const(), c.view(), {});
    const double err = relative_frobenius_error(c.view(), ref.view());
    // In double precision the lambda-optimized APA error is ~2^-26; exact
    // rules hit machine precision.
    const double bound =
        params.exact ? 1e-12
                     : 8.0 * params.predicted_error(kPrecisionBitsDouble, 1);
    EXPECT_LT(err, bound) << algo << " @ " << m << "x" << k << "x" << n
                          << " (trial " << trial << ")";
  }
}

TEST(Property, PermutationPreservesRankNnzAndParams) {
  Rng rng(5);
  for (const char* name : {"bini322", "apa422", "fast442", "apa333"}) {
    const Rule& rule = rule_by_name(name);
    const AlgorithmParams base = analyze(rule);
    for (int perm = 1; perm < 6; ++perm) {
      const Rule permuted = permute_rule(rule, perm);
      const AlgorithmParams p = analyze(permuted);
      EXPECT_EQ(p.rank, base.rank) << name << " perm " << perm;
      EXPECT_EQ(p.sigma, base.sigma);
      EXPECT_EQ(p.phi, base.phi);
      EXPECT_EQ(p.nnz_inputs + p.nnz_outputs, base.nnz_inputs + base.nnz_outputs);
    }
  }
}

}  // namespace
}  // namespace apa::core
