#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/registry.h"

namespace apa::core {
namespace {

TEST(CostModel, ClassicalRuleHasOnlyOutputWrites) {
  // classical<1,1,1>: one product, single unit terms on both sides (free),
  // one output entry reading one product: (1 + 1) * block elements.
  const Rule rule = classical(1, 1, 1);
  const double bytes = addition_traffic_bytes(rule, 64, 64, 64);
  EXPECT_DOUBLE_EQ(bytes, 2.0 * 64 * 64 * sizeof(float));
}

TEST(CostModel, StrassenTrafficMatchesHandCount) {
  // Strassen at block size b = (dim/2)^2 elements:
  //  inputs: M1,M6,M7 have 2-term U and V; M2,M5 2-term on one side only;
  //  M3,M4 2-term V only. Multi-term combos: U in {M1,M2,M5->? } count:
  //  U terms per product: 2,2,1,1,2,2,2 ; V terms: 2,1,2,2,1,2,2.
  //  U traffic: products with U>1 (5 of them): (2+1)*b each = 15b.
  //  V traffic: products with V>1 (5): 15b.
  //  W: entries have 4,2,2,4 terms -> (5+3+3+5) b = 16b.
  const Rule rule = strassen();
  const double b = 32.0 * 32.0;  // dim 64
  EXPECT_DOUBLE_EQ(addition_traffic_bytes(rule, 64, 64, 64),
                   (15 + 15 + 16) * b * sizeof(float));
}

TEST(CostModel, TrafficScalesWithBlockArea) {
  const Rule rule = bini322();
  const double small = addition_traffic_bytes(rule, 60, 60, 60);
  const double large = addition_traffic_bytes(rule, 120, 120, 120);
  EXPECT_NEAR(large / small, 4.0, 1e-9);
}

TEST(CostModel, DoublePrecisionDoublesTraffic) {
  const Rule rule = strassen();
  EXPECT_DOUBLE_EQ(addition_traffic_bytes(rule, 64, 64, 64, sizeof(double)),
                   2.0 * addition_traffic_bytes(rule, 64, 64, 64, sizeof(float)));
}

TEST(CostModel, PredictBreakdownComposes) {
  const Rule& rule = rule_by_name("fast444");
  CostInputs inputs;
  inputs.sub_gemm_seconds = 1e-3;
  inputs.add_bandwidth = 1e10;
  const auto breakdown = predict_one_step(rule, 1024, 1024, 1024, inputs);
  EXPECT_DOUBLE_EQ(breakdown.multiply_seconds, 49e-3);
  EXPECT_GT(breakdown.addition_seconds, 0);
  EXPECT_DOUBLE_EQ(breakdown.total(),
                   breakdown.multiply_seconds + breakdown.addition_seconds);
}

TEST(CostModel, HigherRankMeansMoreMultiplyTime) {
  CostInputs inputs;
  inputs.sub_gemm_seconds = 1e-3;
  inputs.add_bandwidth = 1e10;
  const auto strassen_cost =
      predict_one_step(rule_by_name("strassen"), 512, 512, 512, inputs);
  const auto classical_cost = predict_one_step(classical(2, 2, 2), 512, 512, 512, inputs);
  EXPECT_LT(strassen_cost.multiply_seconds, classical_cost.multiply_seconds);
  EXPECT_GT(strassen_cost.addition_seconds, classical_cost.addition_seconds);
}

TEST(CostModel, InvalidInputsRejected) {
  const Rule rule = strassen();
  EXPECT_THROW((void)addition_traffic_bytes(rule, 63, 64, 64), std::logic_error);
  EXPECT_THROW((void)predict_one_step(rule, 64, 64, 64, {}), std::logic_error);
}

TEST(CostModel, MeasuredBandwidthPlausible) {
  const double bw = measure_add_bandwidth(256);
  EXPECT_GT(bw, 1e8);   // > 0.1 GB/s — anything slower means broken timing
  EXPECT_LT(bw, 1e13);  // < 10 TB/s — faster means broken math
}

}  // namespace
}  // namespace apa::core
