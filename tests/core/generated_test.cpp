// Validates the committed codegen output end-to-end: the generated kernels
// must compile (enforced by the build) and agree with the runtime executor
// evaluating the same rule at the same lambda.

#include "generated/generated.h"

#include <gtest/gtest.h>

#include <cmath>

#include "blas/gemm.h"
#include "core/executor.h"
#include "core/registry.h"
#include "support/rng.h"

namespace apa {
namespace {

using GeneratedFn = void (*)(MatrixView<const float>, MatrixView<const float>,
                             MatrixView<float>, int);

void check_against_executor(const char* algo, GeneratedFn fn, double lambda_value,
                            index_t dim) {
  Rng rng(static_cast<std::uint64_t>(dim));
  Matrix<float> a(dim, dim), b(dim, dim), c_gen(dim, dim), c_exec(dim, dim);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);

  fn(a.view().as_const(), b.view().as_const(), c_gen.view(), 1);

  const auto evaluated =
      core::EvaluatedRule::from(core::rule_by_name(algo), lambda_value);
  core::multiply<float>(evaluated, a.view().as_const(), b.view().as_const(),
                        c_exec.view(), 1, core::Strategy::kSequential, 1);
  // Same arithmetic in the same order: results must agree to the last ulp of
  // the combination coefficients' rounding (coefficients pass through a
  // double -> float cast in both paths).
  EXPECT_LT(max_abs_diff(c_gen.view(), c_exec.view()), 1e-5) << algo << " @ " << dim;
}

TEST(Generated, StrassenMatchesExecutor) {
  check_against_executor("strassen", generated::strassen_multiply, 1.0, 64);
  check_against_executor("strassen", generated::strassen_multiply, 1.0, 130);
}

TEST(Generated, Bini322MatchesExecutor) {
  check_against_executor("bini322", generated::bini322_multiply,
                         std::exp2(-11.5), 60);
}

TEST(Generated, Fast442MatchesExecutor) {
  check_against_executor("fast442", generated::fast442_multiply, 1.0, 64);
}

TEST(Generated, StrassenIsAccurate) {
  const index_t dim = 64;
  Rng rng(3);
  Matrix<float> a(dim, dim), b(dim, dim), c(dim, dim), ref(dim, dim);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  generated::strassen_multiply(a.view().as_const(), b.view().as_const(), c.view(), 1);
  blas::gemm<float>(a.view(), b.view(), ref.view());
  EXPECT_LT(relative_frobenius_error(c.view(), ref.view()), 1e-5);
}

TEST(Generated, IndivisibleDimsRejected) {
  Matrix<float> a(3, 3), b(3, 3), c(3, 3);
  a.set_zero();
  b.set_zero();
  EXPECT_THROW(generated::strassen_multiply(a.view().as_const(), b.view().as_const(),
                                            c.view(), 1),
               std::logic_error);
}

}  // namespace
}  // namespace apa
