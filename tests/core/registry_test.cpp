#include "core/registry.h"

#include <gtest/gtest.h>

#include <set>

#include "core/params.h"

namespace apa::core {
namespace {

TEST(Registry, HasExpectedCatalog) {
  const auto names = algorithm_names();
  EXPECT_GE(names.size(), 15u);
  const std::set<std::string> name_set(names.begin(), names.end());
  EXPECT_EQ(name_set.size(), names.size()) << "duplicate names";
  for (const char* expected :
       {"strassen", "winograd", "bini322", "apa422", "apa332", "apa522", "apa722",
        "apa333", "fast442", "apa433", "apa552", "fast444", "apa644", "apa664",
        "apa555"}) {
    EXPECT_TRUE(name_set.count(expected)) << expected;
  }
}

TEST(Registry, HasAlgorithmAgreesWithList) {
  EXPECT_TRUE(has_algorithm("bini322"));
  EXPECT_FALSE(has_algorithm("nope"));
  EXPECT_FALSE(has_algorithm("classical"));  // handled by FastMatmul, not registry
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)rule_by_name("does-not-exist"), std::logic_error);
}

TEST(Registry, RuleDimsMatchMetadata) {
  for (const AlgorithmInfo& info : list_algorithms()) {
    const Rule& rule = rule_by_name(info.name);
    EXPECT_EQ(rule.m, info.m) << info.name;
    EXPECT_EQ(rule.k, info.k) << info.name;
    EXPECT_EQ(rule.n, info.n) << info.name;
    EXPECT_EQ(rule.rank, info.rank) << info.name;
    EXPECT_EQ(rule.name, info.name);
  }
}

TEST(Registry, EveryRuleSatisfiesBrentEquations) {
  for (const AlgorithmInfo& info : list_algorithms()) {
    const Validation v = validate(rule_by_name(info.name));
    EXPECT_TRUE(v.valid) << info.name << ": " << v.message;
  }
}

TEST(Registry, ApaRulesHaveSigmaOneExactRulesAreLambdaFree) {
  for (const AlgorithmInfo& info : list_algorithms()) {
    const AlgorithmParams p = analyze(rule_by_name(info.name));
    const bool expected_exact = info.name.rfind("apa", 0) != 0 &&
                                info.name != "bini322";
    EXPECT_EQ(p.exact, expected_exact) << info.name;
    if (!p.exact) {
      EXPECT_EQ(p.sigma, 1) << info.name;
      EXPECT_GE(p.phi, 1) << info.name;
    }
  }
}

TEST(Registry, RanksNeverBeatPaperTable1) {
  // Our constructions substitute the unavailable published tables; by design
  // they never have *lower* rank than the originals (DESIGN.md section 2).
  for (const AlgorithmInfo& info : list_algorithms()) {
    if (info.paper_rank > 0) {
      EXPECT_GE(info.rank, static_cast<index_t>(info.paper_rank)) << info.name;
    }
  }
}

TEST(Registry, AllFastRulesBeatClassicalRank) {
  for (const AlgorithmInfo& info : list_algorithms()) {
    EXPECT_LT(info.rank, info.m * info.k * info.n) << info.name;
  }
}

TEST(Registry, RepeatedLookupReturnsSameObject) {
  const Rule& a = rule_by_name("bini322");
  const Rule& b = rule_by_name("bini322");
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace apa::core
