#include "core/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/catalog.h"
#include "core/registry.h"

namespace apa::core {
namespace {

void expect_rules_equal(const Rule& a, const Rule& b) {
  EXPECT_EQ(a.m, b.m);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.u, b.u);
  EXPECT_EQ(a.v, b.v);
  EXPECT_EQ(a.w, b.w);
}

TEST(Serialize, RoundTripStrassen) {
  std::stringstream ss;
  write_rule(ss, strassen());
  const Rule loaded = read_rule(ss);
  EXPECT_EQ(loaded.name, "strassen");
  expect_rules_equal(loaded, strassen());
}

TEST(Serialize, RoundTripBiniPreservesLaurentCoefficients) {
  std::stringstream ss;
  write_rule(ss, bini322());
  const Rule loaded = read_rule(ss);
  expect_rules_equal(loaded, bini322());
  const Validation v = validate(loaded);
  EXPECT_TRUE(v.valid);
  EXPECT_EQ(v.sigma, 1);
}

TEST(Serialize, RoundTripEveryRegistryRule) {
  for (const auto& info : list_algorithms()) {
    std::stringstream ss;
    write_rule(ss, rule_by_name(info.name));
    // Structural check only here; full Brent validation per rule is covered by
    // registry tests and would make this loop slow for rank-100 rules.
    const Rule loaded = read_rule(ss, /*validate_brent=*/false);
    expect_rules_equal(loaded, rule_by_name(info.name));
  }
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = "/tmp/apamm_rule_test.rule";
  write_rule_file(path, winograd());
  const Rule loaded = read_rule_file(path);
  expect_rules_equal(loaded, winograd());
  std::remove(path.c_str());
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  std::stringstream ss;
  ss << "# a published rule, hand-entered\n"
     << "apamm-rule 1\n\n"
     << "name tiny   # trailing comment\n"
     << "dims 1 1 1\n"
     << "rank 1\n"
     << "U 0 0 0 1 0\n"
     << "V 0 0 0 1 0\n"
     << "W 0 0 0 1 0\n";
  const Rule loaded = read_rule(ss);
  EXPECT_EQ(loaded.name, "tiny");
  EXPECT_TRUE(validate(loaded).exact);
}

TEST(Serialize, RationalCoefficientsParsed) {
  std::stringstream ss;
  ss << "apamm-rule 1\nname halves\ndims 1 1 1\nrank 1\n"
     << "U 0 0 0 1/2 0\nV 0 0 0 2 0\nW 0 0 0 1 0\n";
  const Rule loaded = read_rule(ss);
  EXPECT_EQ(loaded.U(0, 0, 0).constant_term(), Rational(1, 2));
  EXPECT_TRUE(validate(loaded).exact);  // (1/2)*(2) = 1
}

TEST(Serialize, RepeatedLinesAccumulatePolynomial) {
  std::stringstream ss;
  ss << "apamm-rule 1\nname poly\ndims 1 1 1\nrank 1\n"
     << "U 0 0 0 1 0\nU 0 0 0 -1 1\n"  // 1 - lambda
     << "V 0 0 0 1 0\nW 0 0 0 1 0\n";
  const Rule loaded = read_rule(ss, /*validate_brent=*/true);
  EXPECT_EQ(loaded.U(0, 0, 0).coefficient(1), Rational(-1));
  EXPECT_EQ(validate(loaded).sigma, 1);
}

TEST(Serialize, InvalidInputsRejected) {
  const auto parse = [](const std::string& text, bool brent = true) {
    std::stringstream ss(text);
    return read_rule(ss, brent);
  };
  EXPECT_THROW((void)parse("name x\ndims 1 1 1\nrank 1\n"), std::logic_error)
      << "missing magic";
  EXPECT_THROW((void)parse("apamm-rule 2\n"), std::logic_error) << "bad version";
  EXPECT_THROW((void)parse("apamm-rule 1\nU 0 0 0 1 0\n"), std::logic_error)
      << "coefficients before header";
  EXPECT_THROW((void)parse("apamm-rule 1\ndims 1 1 1\nrank 1\nU 0 5 0 1 0\n"),
               std::logic_error)
      << "column out of bounds";
  EXPECT_THROW((void)parse("apamm-rule 1\ndims 1 1 1\nrank 1\nQ 0 0 0 1 0\n"),
               std::logic_error)
      << "unknown tag";
}

TEST(Serialize, BrentValidationCatchesWrongRule) {
  std::stringstream ss;
  ss << "apamm-rule 1\nname broken\ndims 1 1 1\nrank 1\n"
     << "U 0 0 0 2 0\nV 0 0 0 1 0\nW 0 0 0 1 0\n";  // computes 2ab, not ab
  EXPECT_THROW((void)read_rule(ss), std::logic_error);
  std::stringstream ss2;
  ss2 << "apamm-rule 1\nname broken\ndims 1 1 1\nrank 1\n"
      << "U 0 0 0 2 0\nV 0 0 0 1 0\nW 0 0 0 1 0\n";
  EXPECT_NO_THROW((void)read_rule(ss2, /*validate_brent=*/false));
}

}  // namespace
}  // namespace apa::core
