#include "core/fastmm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "blas/gemm.h"
#include "core/catalog.h"
#include "support/rng.h"

namespace apa::core {
namespace {

TEST(FastMatmul, ClassicalMatchesGemm) {
  FastMatmul mm("classical");
  EXPECT_TRUE(mm.is_classical());
  Rng rng(1);
  Matrix<float> a(33, 45), b(45, 27), c(33, 27), ref(33, 27);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  mm.multiply(a.view().as_const(), b.view().as_const(), c.view());
  blas::gemm<float>(a.view(), b.view(), ref.view());
  EXPECT_EQ(max_abs_diff(c.view(), ref.view()), 0.0);
}

TEST(FastMatmul, ClassicalParamsThrow) {
  FastMatmul mm("classical");
  EXPECT_THROW((void)mm.params(), std::logic_error);
}

TEST(FastMatmul, BiniWithinBound) {
  FastMatmul mm("bini322");
  EXPECT_FALSE(mm.is_classical());
  EXPECT_EQ(mm.params().rank, 10);
  EXPECT_NEAR(mm.lambda(), std::exp2(-11.5), 1e-5);

  Rng rng(2);
  const index_t dim = 96;
  Matrix<float> a(dim, dim), b(dim, dim), c(dim, dim);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  Matrix<double> ad(dim, dim), bd(dim, dim), ref(dim, dim);
  for (index_t i = 0; i < dim * dim; ++i) {
    ad.data()[i] = a.data()[i];
    bd.data()[i] = b.data()[i];
  }
  blas::gemm<double>(ad.view(), bd.view(), ref.view());
  mm.multiply(a.view().as_const(), b.view().as_const(), c.view());
  EXPECT_LT(relative_frobenius_error(c.view(), ref.view()), 1.5e-3);
}

TEST(FastMatmul, ExplicitLambdaHonored) {
  FastMatmulOptions opts;
  opts.lambda = 0.125;
  FastMatmul mm("bini322", opts);
  EXPECT_DOUBLE_EQ(mm.lambda(), 0.125);
}

TEST(FastMatmul, HybridStrategyMatchesSequential) {
  FastMatmulOptions seq_opts;
  FastMatmulOptions hyb_opts;
  hyb_opts.strategy = Strategy::kHybrid;
  hyb_opts.num_threads = 4;
  FastMatmul seq("fast444", seq_opts), hyb("fast444", hyb_opts);

  Rng rng(3);
  Matrix<float> a(64, 64), b(64, 64), c1(64, 64), c2(64, 64);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  seq.multiply(a.view().as_const(), b.view().as_const(), c1.view());
  hyb.multiply(a.view().as_const(), b.view().as_const(), c2.view());
  EXPECT_LT(max_abs_diff(c1.view(), c2.view()), 1e-5);
}

TEST(FastMatmul, AdHocRuleConstructor) {
  FastMatmul mm(strassen());
  EXPECT_EQ(mm.algorithm(), "strassen");
  EXPECT_TRUE(mm.params().exact);
  EXPECT_DOUBLE_EQ(mm.lambda(), 1.0);
}

TEST(FastMatmul, DoubleOverload) {
  FastMatmul mm("strassen");
  Rng rng(5);
  Matrix<double> a(32, 32), b(32, 32), c(32, 32), ref(32, 32);
  fill_random_uniform<double>(a.view(), rng);
  fill_random_uniform<double>(b.view(), rng);
  blas::gemm<double>(a.view(), b.view(), ref.view());
  mm.multiply(a.view().as_const(), b.view().as_const(), c.view());
  EXPECT_LT(relative_frobenius_error(c.view(), ref.view()), 1e-13);
}

TEST(FastMatmul, PrecisionBitsSelectLambda) {
  FastMatmulOptions single_opts;  // default 23 bits
  FastMatmulOptions double_opts;
  double_opts.precision_bits = kPrecisionBitsDouble;
  FastMatmul single_mm("bini322", single_opts), double_mm("bini322", double_opts);
  EXPECT_NEAR(single_mm.lambda(), std::exp2(-11.5), 1e-6);
  EXPECT_NEAR(double_mm.lambda(), std::exp2(-26.0), 1e-10);
  EXPECT_LT(double_mm.lambda(), single_mm.lambda());
}

TEST(FastMatmul, OutOfRangeLambdaRejected) {
  FastMatmulOptions opts;
  opts.lambda = 0.0;
  EXPECT_THROW(FastMatmul("bini322", opts), std::logic_error);
  opts.lambda = 2.0;
  EXPECT_THROW(FastMatmul("bini322", opts), std::logic_error);
  opts.lambda = -0.5;
  EXPECT_THROW(FastMatmul("bini322", opts), std::logic_error);
}

TEST(FastMatmul, UnknownAlgorithmThrows) {
  EXPECT_THROW(FastMatmul mm("bogus"), std::logic_error);
}

}  // namespace
}  // namespace apa::core
