#include "core/executor.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "blas/gemm.h"
#include "core/catalog.h"
#include "core/params.h"
#include "core/registry.h"
#include "support/rng.h"

namespace apa::core {
namespace {

/// Double-precision classical reference for error measurement.
template <class T>
Matrix<double> reference_product(const Matrix<T>& a, const Matrix<T>& b) {
  Matrix<double> ad(a.rows(), a.cols()), bd(b.rows(), b.cols()),
      cd(a.rows(), b.cols());
  for (index_t i = 0; i < a.size(); ++i) ad.data()[i] = static_cast<double>(a.data()[i]);
  for (index_t i = 0; i < b.size(); ++i) bd.data()[i] = static_cast<double>(b.data()[i]);
  blas::gemm<double>(ad.view(), bd.view(), cd.view());
  return cd;
}

struct AlgoDims {
  std::string algo;
  index_t dim;  // square problem size
};

void PrintTo(const AlgoDims& p, std::ostream* os) {
  *os << p.algo << "@" << p.dim;
}

class ExecutorAccuracy : public ::testing::TestWithParam<AlgoDims> {};

TEST_P(ExecutorAccuracy, FloatErrorWithinPredictedBound) {
  const auto& [algo, dim] = GetParam();
  const Rule& rule = rule_by_name(algo);
  const AlgorithmParams params = analyze(rule);

  Rng rng(dim * 7 + 1);
  Matrix<float> a(dim, dim), b(dim, dim), c(dim, dim);
  fill_random_uniform<float>(a.view(), rng, -1.0f, 1.0f);
  fill_random_uniform<float>(b.view(), rng, -1.0f, 1.0f);
  const Matrix<double> ref = reference_product(a, b);

  multiply<float>(rule, a.view().as_const(), b.view().as_const(), c.view(), {});
  const double err = relative_frobenius_error(c.view(), ref.view());
  // Paper Fig 1: the theoretical bound dominates the empirical error; allow a
  // small constant slack for the norm-wise aggregation.
  const double bound = 4.0 * params.predicted_error(kPrecisionBitsSingle, 1);
  EXPECT_LT(err, std::max(bound, 1e-5)) << "algo=" << algo << " dim=" << dim;
}

TEST_P(ExecutorAccuracy, DoublePrecisionExactRulesHitMachinePrecision) {
  const auto& [algo, dim] = GetParam();
  const Rule& rule = rule_by_name(algo);
  const AlgorithmParams params = analyze(rule);
  if (!params.exact) GTEST_SKIP() << "APA rule";

  Rng rng(dim * 13 + 3);
  Matrix<double> a(dim, dim), b(dim, dim), c(dim, dim), ref(dim, dim);
  fill_random_uniform<double>(a.view(), rng);
  fill_random_uniform<double>(b.view(), rng);
  blas::gemm<double>(a.view(), b.view(), ref.view());
  multiply<double>(rule, a.view().as_const(), b.view().as_const(), c.view(), {});
  EXPECT_LT(relative_frobenius_error(c.view(), ref.view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    RegistrySweep, ExecutorAccuracy,
    ::testing::Values(AlgoDims{"strassen", 64}, AlgoDims{"winograd", 64},
                      AlgoDims{"bini322", 60}, AlgoDims{"apa422", 64},
                      AlgoDims{"apa332", 66}, AlgoDims{"apa522", 80},
                      AlgoDims{"apa722", 56}, AlgoDims{"apa333", 81},
                      AlgoDims{"fast442", 64}, AlgoDims{"apa433", 72},
                      AlgoDims{"apa552", 100}, AlgoDims{"fast444", 64},
                      AlgoDims{"apa644", 96}, AlgoDims{"apa664", 72},
                      AlgoDims{"apa555", 100}));

class ExecutorStrategies : public ::testing::TestWithParam<std::string> {};

TEST_P(ExecutorStrategies, AllStrategiesProduceSameResult) {
  const Rule& rule = rule_by_name(GetParam());
  const index_t dim = 48;
  Rng rng(99);
  Matrix<float> a(dim, dim), b(dim, dim);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);

  Matrix<float> c_seq(dim, dim);
  ExecOptions opts;
  opts.strategy = Strategy::kSequential;
  multiply<float>(rule, a.view().as_const(), b.view().as_const(), c_seq.view(), opts);

  for (Strategy s : {Strategy::kDfs, Strategy::kBfs, Strategy::kHybrid}) {
    Matrix<float> c(dim, dim);
    ExecOptions par = opts;
    par.strategy = s;
    par.num_threads = 4;
    multiply<float>(rule, a.view().as_const(), b.view().as_const(), c.view(), par);
    EXPECT_LT(max_abs_diff(c.view(), c_seq.view()), 1e-5)
        << "strategy=" << to_string(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, ExecutorStrategies,
                         ::testing::Values("strassen", "bini322", "fast442", "apa333",
                                           "apa555"));

TEST(Executor, PaddingHandlesAwkwardDimensions) {
  // 97 x 103 x 89 is divisible by nothing relevant; result must still be right.
  const Rule& rule = rule_by_name("bini322");
  Rng rng(7);
  Matrix<float> a(97, 103), b(103, 89), c(97, 89);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  const Matrix<double> ref = reference_product(a, b);
  multiply<float>(rule, a.view().as_const(), b.view().as_const(), c.view(), {});
  EXPECT_LT(relative_frobenius_error(c.view(), ref.view()), 4 * 3.5e-4);
}

TEST(Executor, RectangularOperands) {
  // Tall-skinny times small: exercises distinct bm/bk/bn.
  const Rule& rule = rule_by_name("fast442");  // <4,4,2>
  Rng rng(17);
  Matrix<float> a(128, 64), b(64, 32), c(128, 32);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  const Matrix<double> ref = reference_product(a, b);
  multiply<float>(rule, a.view().as_const(), b.view().as_const(), c.view(), {});
  EXPECT_LT(relative_frobenius_error(c.view(), ref.view()), 1e-5);
}

TEST(Executor, TwoRecursiveStepsExact) {
  const Rule& rule = rule_by_name("strassen");
  const index_t dim = 64;  // divisible by 2^2
  Rng rng(23);
  Matrix<float> a(dim, dim), b(dim, dim), c(dim, dim);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  const Matrix<double> ref = reference_product(a, b);
  ExecOptions opts;
  opts.steps = 2;
  multiply<float>(rule, a.view().as_const(), b.view().as_const(), c.view(), opts);
  EXPECT_LT(relative_frobenius_error(c.view(), ref.view()), 1e-5);
}

TEST(Executor, TwoRecursiveStepsApaUsesWeakerBound) {
  const Rule& rule = rule_by_name("bini322");
  const AlgorithmParams params = analyze(rule);
  const index_t dim = 90;  // divisible by 3^2 and 2^2
  Rng rng(29);
  Matrix<float> a(dim, dim), b(dim, dim), c(dim, dim);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  const Matrix<double> ref = reference_product(a, b);
  ExecOptions opts;
  opts.steps = 2;
  multiply<float>(rule, a.view().as_const(), b.view().as_const(), c.view(), opts);
  const double err = relative_frobenius_error(c.view(), ref.view());
  EXPECT_LT(err, 4.0 * params.predicted_error(kPrecisionBitsSingle, 2));
}

TEST(Executor, SmallMatrixFallsBackToGemm) {
  // dims below the rule's block shape: straight gemm, exact result.
  const Rule& rule = rule_by_name("apa555");
  Rng rng(31);
  Matrix<float> a(3, 3), b(3, 3), c(3, 3);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  const Matrix<double> ref = reference_product(a, b);
  multiply<float>(rule, a.view().as_const(), b.view().as_const(), c.view(), {});
  EXPECT_LT(relative_frobenius_error(c.view(), ref.view()), 1e-6);
}

TEST(Executor, ApaErrorScalesLinearlyWithLambdaInDouble) {
  // In double precision roundoff is negligible at moderate lambda, so the
  // O(lambda) approximation term dominates: halving lambda halves the error.
  const Rule& rule = rule_by_name("bini322");
  const index_t dim = 48;
  Rng rng(37);
  Matrix<double> a(dim, dim), b(dim, dim), ref(dim, dim);
  fill_random_uniform<double>(a.view(), rng);
  fill_random_uniform<double>(b.view(), rng);
  blas::gemm<double>(a.view(), b.view(), ref.view());

  auto error_at = [&](double lambda_value) {
    Matrix<double> c(dim, dim);
    ExecOptions opts;
    opts.lambda = lambda_value;
    multiply<double>(rule, a.view().as_const(), b.view().as_const(), c.view(), opts);
    return relative_frobenius_error(c.view(), ref.view());
  };
  const double e1 = error_at(1e-3);
  const double e2 = error_at(5e-4);
  EXPECT_NEAR(e1 / e2, 2.0, 0.2);
}

TEST(Executor, EvaluatedRuleBiniCoefficients) {
  const double lambda_value = 0.25;
  const EvaluatedRule ev = EvaluatedRule::from(bini322(), lambda_value);
  ASSERT_EQ(ev.u_terms.size(), 10u);
  // M1 = (A11 + A22)(lambda*B11 + B22): U row has entries 0 (A11) and 3 (A22).
  ASSERT_EQ(ev.u_terms[0].size(), 2u);
  EXPECT_EQ(ev.u_terms[0][0].first, 0);
  EXPECT_DOUBLE_EQ(ev.u_terms[0][0].second, 1.0);
  EXPECT_DOUBLE_EQ(ev.v_terms[0][0].second, lambda_value);  // lambda * B11
  // C11 = lambda^-1(M1 + M2 - M3 + M4): first W entry coeff 1/lambda.
  ASSERT_EQ(ev.w_terms[0].size(), 4u);
  EXPECT_DOUBLE_EQ(ev.w_terms[0][0].second, 4.0);
  EXPECT_DOUBLE_EQ(ev.w_terms[0][2].second, -4.0);  // -M3 / lambda
}

TEST(Executor, StridedViewsEmbeddedInLargerStorage) {
  // Operands and output living as blocks of bigger matrices: the executor's
  // block arithmetic must honor leading dimensions throughout.
  const Rule& rule = rule_by_name("strassen");
  Rng rng(41);
  Matrix<float> big_a(100, 100), big_b(100, 100), big_c(100, 100);
  fill_random_uniform<float>(big_a.view(), rng);
  fill_random_uniform<float>(big_b.view(), rng);
  big_c.set_zero();
  auto a_blk = big_a.view().block(3, 5, 64, 64);
  auto b_blk = big_b.view().block(7, 2, 64, 64);
  auto c_blk = big_c.view().block(11, 13, 64, 64);
  multiply<float>(rule, a_blk.as_const(), b_blk.as_const(), c_blk, {});

  Matrix<float> ref(64, 64);
  blas::gemm_reference<float>(blas::Trans::kNo, blas::Trans::kNo, 64, 64, 64, 1.0f,
                              a_blk.data, a_blk.ld, b_blk.data, b_blk.ld, 0.0f,
                              ref.data(), ref.ld());
  EXPECT_LT(relative_frobenius_error(c_blk, ref.view()), 1e-4);
  // Storage outside the C block is untouched.
  EXPECT_EQ(big_c(0, 0), 0.0f);
  EXPECT_EQ(big_c(99, 99), 0.0f);
}

TEST(Rule, DescribeListsProductsAndOutputs) {
  const std::string text = describe(rule_by_name("bini322"));
  EXPECT_NE(text.find("M10 = "), std::string::npos);
  EXPECT_NE(text.find("C32 = "), std::string::npos);
  EXPECT_NE(text.find("(L)*B11"), std::string::npos);      // lambda*B11 in M1
  EXPECT_NE(text.find("(L^-1)*M1"), std::string::npos);    // lambda^-1 in C11
}

TEST(Executor, MismatchedShapesThrow) {
  const Rule& rule = rule_by_name("strassen");
  Matrix<float> a(4, 4), b(6, 4), c(4, 4);
  EXPECT_THROW(multiply<float>(rule, a.view().as_const(), b.view().as_const(), c.view(),
                               {}),
               std::logic_error);
}

/// Materializes the explicit transpose so the zero-copy path can be checked
/// against the plain no-transpose executor on identical logical operands.
Matrix<float> transposed(const Matrix<float>& m) {
  Matrix<float> t(m.cols(), m.rows());
  for (index_t i = 0; i < m.rows(); ++i)
    for (index_t j = 0; j < m.cols(); ++j) t(j, i) = m(i, j);
  return t;
}

class ExecutorTransposes
    : public ::testing::TestWithParam<std::tuple<std::string, bool, bool>> {};

TEST_P(ExecutorTransposes, ZeroCopyTransposeMatchesMaterialized) {
  const auto& [algo, ta, tb] = GetParam();
  const Rule& rule = rule_by_name(algo);
  const index_t m = 64, k = 64, n = 64;
  Rng rng(static_cast<std::uint64_t>(41 + ta * 2 + tb));
  Matrix<float> op_a(m, k), op_b(k, n), c_plain(m, n), c_trans(m, n);
  fill_random_uniform<float>(op_a.view(), rng);
  fill_random_uniform<float>(op_b.view(), rng);
  multiply<float>(rule, op_a.view().as_const(), op_b.view().as_const(), c_plain.view(),
                  {});

  // Same logical product with transposed storage: both runs alias / combine /
  // pack the same values, so the results must agree to rounding noise.
  const Matrix<float> a_stored = ta ? transposed(op_a) : Matrix<float>();
  const Matrix<float> b_stored = tb ? transposed(op_b) : Matrix<float>();
  multiply<float>(rule, (ta ? a_stored : op_a).view().as_const(),
                  (tb ? b_stored : op_b).view().as_const(), c_trans.view(), {}, ta, tb);
  EXPECT_LT(max_abs_diff(c_trans.view(), c_plain.view()), 1e-5)
      << "algo=" << algo << " ta=" << ta << " tb=" << tb;
}

INSTANTIATE_TEST_SUITE_P(
    Combos, ExecutorTransposes,
    ::testing::Combine(::testing::Values(std::string("strassen"),
                                         std::string("bini322")),
                       ::testing::Bool(), ::testing::Bool()));

TEST(Executor, TransposedOperandsThroughPadding) {
  // Awkward dims force the pad path, which must materialize the transpose into
  // the padded buffer rather than a plain copy.
  const Rule& rule = rule_by_name("bini322");
  Rng rng(53);
  Matrix<float> op_a(97, 103), op_b(103, 89), c(97, 89);
  fill_random_uniform<float>(op_a.view(), rng);
  fill_random_uniform<float>(op_b.view(), rng);
  const Matrix<double> ref = reference_product(op_a, op_b);
  const Matrix<float> a_stored = transposed(op_a);
  const Matrix<float> b_stored = transposed(op_b);
  multiply<float>(rule, a_stored.view().as_const(), b_stored.view().as_const(),
                  c.view(), {}, true, true);
  EXPECT_LT(relative_frobenius_error(c.view(), ref.view()), 4 * 3.5e-4);
}

TEST(Executor, TransposedStridedViews) {
  // Transposed sub-blocks embedded in larger storage: ld != cols on both
  // operands while the logical operand is the transpose of the view.
  const Rule& rule = rule_by_name("strassen");
  Rng rng(61);
  Matrix<float> big_a(100, 100), big_b(100, 100), c(64, 64), c_ref(64, 64);
  fill_random_uniform<float>(big_a.view(), rng);
  fill_random_uniform<float>(big_b.view(), rng);
  const auto a_blk = big_a.view().block(3, 5, 64, 64);   // stores op(A)^T
  const auto b_blk = big_b.view().block(11, 2, 64, 64);  // stores op(B)^T
  multiply<float>(rule, a_blk.as_const(), b_blk.as_const(), c.view(), {}, true, true);
  blas::gemm_reference<float>(blas::Trans::kYes, blas::Trans::kYes, 64, 64, 64, 1.0f,
                              a_blk.data, a_blk.ld, b_blk.data, b_blk.ld, 0.0f,
                              c_ref.data(), c_ref.ld());
  EXPECT_LT(relative_frobenius_error(c.view(), c_ref.view()), 1e-4);
}

}  // namespace
}  // namespace apa::core
