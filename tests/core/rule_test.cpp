#include "core/rule.h"

#include <gtest/gtest.h>

#include "core/catalog.h"

namespace apa::core {
namespace {

TEST(Validate, ClassicalRulesAreExact) {
  for (const auto& [m, k, n] : {std::tuple{1, 1, 1}, std::tuple{2, 2, 2},
                                std::tuple{3, 2, 4}, std::tuple{1, 3, 2}}) {
    const Rule rule = classical(m, k, n);
    const Validation v = validate(rule);
    EXPECT_TRUE(v.valid) << rule.name << ": " << v.message;
    EXPECT_TRUE(v.exact) << rule.name;
    EXPECT_EQ(v.sigma, 0);
    EXPECT_EQ(compute_phi(rule), 0);
  }
}

TEST(Validate, BrokenRuleRejected) {
  Rule rule = classical(2, 2, 2);
  rule.W(0, 0, 0) = LaurentPoly(Rational(2));  // wrong coefficient
  const Validation v = validate(rule);
  EXPECT_FALSE(v.valid);
  EXPECT_FALSE(v.message.empty());
}

TEST(Validate, NegativeResidualPowerRejected) {
  // A lambda^-1 residual (not cancelled) must be flagged invalid even though
  // the constant term is correct.
  Rule rule = classical(1, 1, 1);
  rule.W(0, 0, 0) += LaurentPoly::lambda(-1);
  const Validation v = validate(rule);
  EXPECT_FALSE(v.valid);
}

TEST(Validate, PositiveResidualGivesSigma) {
  // Perturb with a lambda^2 residual: still a valid APA rule, sigma = 2.
  Rule rule = classical(1, 1, 1);
  rule.W(0, 0, 0) += LaurentPoly::lambda(2);
  const Validation v = validate(rule);
  EXPECT_TRUE(v.valid);
  EXPECT_FALSE(v.exact);
  EXPECT_EQ(v.sigma, 2);
}

TEST(Rule, TheoreticalSpeedup) {
  const Rule s = strassen();
  EXPECT_NEAR(s.theoretical_speedup(), 8.0 / 7.0 - 1.0, 1e-12);
  const Rule b = bini322();
  EXPECT_NEAR(b.theoretical_speedup(), 12.0 / 10.0 - 1.0, 1e-12);  // 20%
}

TEST(Rule, NnzCounts) {
  const Rule c = classical(2, 2, 2);
  EXPECT_EQ(c.nnz_inputs(), 16);  // 8 products x (1 U term + 1 V term)
  EXPECT_EQ(c.nnz_outputs(), 8);
  const Rule s = strassen();
  EXPECT_EQ(s.nnz_inputs(), 12 + 12);  // classic Strassen: 12 U, 12 V nonzeros
  EXPECT_EQ(s.nnz_outputs(), 12);
}

TEST(Rule, LambdaFreeDetection) {
  EXPECT_TRUE(strassen().is_lambda_free());
  EXPECT_FALSE(bini322().is_lambda_free());
}

TEST(ComputePhi, BiniIsOne) { EXPECT_EQ(compute_phi(bini322()), 1); }

TEST(ComputePhi, StrassenIsZero) { EXPECT_EQ(compute_phi(strassen()), 0); }

}  // namespace
}  // namespace apa::core
