#include <gtest/gtest.h>

#include "blas/gemm.h"
#include "core/executor.h"
#include "core/registry.h"
#include "support/rng.h"

namespace apa::core {
namespace {

Matrix<double> reference(const Matrix<float>& a, const Matrix<float>& b) {
  Matrix<double> ad(a.rows(), a.cols()), bd(b.rows(), b.cols()), cd(a.rows(), b.cols());
  for (index_t i = 0; i < a.size(); ++i) ad.data()[i] = a.data()[i];
  for (index_t i = 0; i < b.size(); ++i) bd.data()[i] = b.data()[i];
  blas::gemm<double>(ad.view(), bd.view(), cd.view());
  return cd;
}

TEST(NonStationary, MixedExactChainIsAccurate) {
  // <4,4,4> step over a <2,2,2> step: handles dim 8*k without padding.
  const auto fast444 = EvaluatedRule::from(rule_by_name("fast444"), 1.0);
  const auto strassen = EvaluatedRule::from(rule_by_name("strassen"), 1.0);
  const std::vector<const EvaluatedRule*> chain = {&fast444, &strassen};

  const index_t dim = 64;
  Rng rng(1);
  Matrix<float> a(dim, dim), b(dim, dim), c(dim, dim);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  multiply_nonstationary<float>(chain, a.view().as_const(), b.view().as_const(),
                                c.view(), Strategy::kSequential, 1);
  EXPECT_LT(relative_frobenius_error(c.view(), reference(a, b).view()), 1e-5);
}

TEST(NonStationary, MixedDimensionChainAvoidsPadding) {
  // dim 24 = 4 * 3 * 2: a <4,4,4> level then a <3,2,2> level divide evenly in
  // m while k/n go 24 -> 6 -> 3; no dimension ever needs padding in m.
  const auto fast444 = EvaluatedRule::from(rule_by_name("fast444"), 1.0);
  const auto bini =
      EvaluatedRule::from(rule_by_name("bini322"), std::exp2(-11));
  const std::vector<const EvaluatedRule*> chain = {&fast444, &bini};

  Rng rng(2);
  Matrix<float> a(48, 48), b(48, 48), c(48, 48);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  multiply_nonstationary<float>(chain, a.view().as_const(), b.view().as_const(),
                                c.view(), Strategy::kSequential, 1);
  // One APA level with phi = 1: error stays in the sqrt(eps) class.
  EXPECT_LT(relative_frobenius_error(c.view(), reference(a, b).view()), 5e-3);
}

TEST(NonStationary, EmptyChainIsGemm) {
  const std::vector<const EvaluatedRule*> chain;
  Rng rng(3);
  Matrix<float> a(16, 16), b(16, 16), c(16, 16);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  multiply_nonstationary<float>(chain, a.view().as_const(), b.view().as_const(),
                                c.view(), Strategy::kSequential, 1);
  EXPECT_LT(relative_frobenius_error(c.view(), reference(a, b).view()), 1e-5);
}

TEST(NonStationary, ChainMatchesRepeatedSteps) {
  // A chain of the same rule twice must agree with multiply(steps = 2).
  const auto strassen = EvaluatedRule::from(rule_by_name("strassen"), 1.0);
  const std::vector<const EvaluatedRule*> chain = {&strassen, &strassen};

  Rng rng(4);
  Matrix<float> a(32, 32), b(32, 32), c_chain(32, 32), c_steps(32, 32);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  multiply_nonstationary<float>(chain, a.view().as_const(), b.view().as_const(),
                                c_chain.view(), Strategy::kSequential, 1);
  multiply<float>(strassen, a.view().as_const(), b.view().as_const(), c_steps.view(), 2,
                  Strategy::kSequential, 1);
  EXPECT_EQ(max_abs_diff(c_chain.view(), c_steps.view()), 0.0);
}

TEST(NonStationary, HybridStrategyMatchesSequential) {
  const auto fast442 = EvaluatedRule::from(rule_by_name("fast442"), 1.0);
  const auto strassen = EvaluatedRule::from(rule_by_name("strassen"), 1.0);
  const std::vector<const EvaluatedRule*> chain = {&fast442, &strassen};

  Rng rng(5);
  Matrix<float> a(64, 64), b(64, 64), c_seq(64, 64), c_hyb(64, 64);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  multiply_nonstationary<float>(chain, a.view().as_const(), b.view().as_const(),
                                c_seq.view(), Strategy::kSequential, 1);
  multiply_nonstationary<float>(chain, a.view().as_const(), b.view().as_const(),
                                c_hyb.view(), Strategy::kHybrid, 4);
  EXPECT_LT(max_abs_diff(c_seq.view(), c_hyb.view()), 1e-5);
}

TEST(NonStationary, NullLevelRejected) {
  const std::vector<const EvaluatedRule*> chain = {nullptr};
  Matrix<float> a(8, 8), b(8, 8), c(8, 8);
  a.set_zero();
  b.set_zero();
  EXPECT_THROW(multiply_nonstationary<float>(chain, a.view().as_const(),
                                             b.view().as_const(), c.view(),
                                             Strategy::kSequential, 1),
               std::logic_error);
}

}  // namespace
}  // namespace apa::core
