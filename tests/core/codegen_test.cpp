#include "core/codegen.h"

#include <gtest/gtest.h>

#include "core/catalog.h"

namespace apa::core {
namespace {

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t count = 0, pos = 0;
  while ((pos = hay.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(Codegen, EmitsOneGemmPerProduct) {
  const std::string code = generate_cpp(strassen());
  EXPECT_EQ(count_occurrences(code, "blas::gemm<float>"), 7u);
  EXPECT_NE(code.find("void strassen_multiply("), std::string::npos);
}

TEST(Codegen, EmitsOneOutputCombinationPerCEntry) {
  const std::string code = generate_cpp(bini322());
  EXPECT_EQ(count_occurrences(code, "blas::gemm<float>"), 10u);
  // 6 output entries -> 6 write-once combinations after the products.
  const auto marker = code.find("Output combinations");
  ASSERT_NE(marker, std::string::npos);
  EXPECT_EQ(count_occurrences(code.substr(marker), "linear_combination"), 6u);
}

TEST(Codegen, LambdaSubstitutedNumerically) {
  CodegenOptions opts;
  opts.lambda = 0.5;
  const std::string code = generate_cpp(bini322(), opts);
  // C11's lambda^-1 coefficient becomes 2.
  EXPECT_NE(code.find("{2.0f, mview(0)"), std::string::npos);
  EXPECT_EQ(code.find("lambda_value"), std::string::npos);  // fully monomorphic
}

TEST(Codegen, CustomFunctionName) {
  CodegenOptions opts;
  opts.function_name = "my_kernel";
  const std::string code = generate_cpp(strassen(), opts);
  EXPECT_NE(code.find("void my_kernel("), std::string::npos);
}

TEST(Codegen, SanitizesRuleNames) {
  Rule rule = classical(2, 2, 2);  // name contains <,>
  const std::string code = generate_cpp(rule);
  EXPECT_NE(code.find("classical_2_2_2__multiply"), std::string::npos);
}

TEST(Codegen, SingleTermCombinationsSkipTemp) {
  // Classical products are single-entry; no input linear_combination emitted.
  const std::string code = generate_cpp(classical(1, 1, 1));
  const auto marker = code.find("Output combinations");
  EXPECT_EQ(count_occurrences(code.substr(0, marker), "linear_combination"), 0u);
}

TEST(Codegen, DivisibilityGuardPresent) {
  const std::string code = generate_cpp(bini322());
  EXPECT_NE(code.find("a.rows % 3 == 0"), std::string::npos);
  EXPECT_NE(code.find("b.cols % 2 == 0"), std::string::npos);
}

}  // namespace
}  // namespace apa::core
