#include "core/select.h"

#include <gtest/gtest.h>

#include "core/params.h"
#include "core/registry.h"

namespace apa::core {
namespace {

TEST(Select, SmallProblemsUseClassical) {
  EXPECT_EQ(select_algorithm(64, 64, 64), "classical");
  EXPECT_EQ(select_algorithm(4096, 32, 4096), "classical");
}

TEST(Select, LargeSquareProblemsPickAFastRule) {
  const std::string algo = select_algorithm(4096, 4096, 4096);
  EXPECT_NE(algo, "classical");
  EXPECT_TRUE(has_algorithm(algo));
  // Should pick a high-speedup rule; anything above 25% theoretical.
  EXPECT_GT(analyze(rule_by_name(algo)).speedup, 0.25);
}

TEST(Select, ExactOnlyExcludesApa) {
  const std::string algo =
      select_algorithm(4096, 4096, 4096, {.exact_only = true});
  EXPECT_NE(algo, "classical");
  EXPECT_TRUE(analyze(rule_by_name(algo)).exact);
}

TEST(Select, MinDimOptionRespected) {
  EXPECT_EQ(select_algorithm(100, 100, 100, {.min_dim = 256}), "classical");
  EXPECT_NE(select_algorithm(100, 100, 100, {.min_dim = 16}), "classical");
}

TEST(Select, SelectionIsDeterministic) {
  EXPECT_EQ(select_algorithm(2048, 2048, 2048), select_algorithm(2048, 2048, 2048));
}

TEST(Select, ChosenRuleFitsWithinProblem) {
  for (index_t dim : {128, 300, 1024}) {
    const std::string algo = select_algorithm(dim, dim, dim);
    if (algo == "classical") continue;
    const Rule& rule = rule_by_name(algo);
    EXPECT_LE(rule.m, dim);
    EXPECT_LE(rule.k, dim);
    EXPECT_LE(rule.n, dim);
  }
}

}  // namespace
}  // namespace apa::core
