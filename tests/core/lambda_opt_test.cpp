#include "core/lambda_opt.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/catalog.h"
#include "core/registry.h"

namespace apa::core {
namespace {

LambdaSearchOptions small_problem() {
  LambdaSearchOptions o;
  o.dim = 96;
  return o;
}

TEST(LambdaOpt, BiniReachesTableOneError) {
  const auto result = optimize_lambda(bini322(), small_problem());
  EXPECT_EQ(result.probes.size(), 5u);
  // Table 1: error 3.5e-4 for <3,2,2;10> in single precision. Empirical error
  // should land at or below that order.
  EXPECT_LT(result.best_error, 1e-3);
  EXPECT_GT(result.best_error, 1e-7);  // APA: cannot reach machine precision
  // Best lambda within the probed window around 2^-11.5.
  EXPECT_GE(result.best_lambda, std::exp2(-14));
  EXPECT_LE(result.best_lambda, std::exp2(-9));
}

TEST(LambdaOpt, ExactRuleReportsSingleProbe) {
  const auto result = optimize_lambda(strassen(), small_problem());
  EXPECT_EQ(result.probes.size(), 1u);
  EXPECT_DOUBLE_EQ(result.best_lambda, 1.0);
  EXPECT_LT(result.best_error, 1e-5);
}

TEST(LambdaOpt, ErrorCurveIsUShaped) {
  // Far from the optimum in either direction the measured error is worse:
  // large lambda -> approximation error, small lambda -> roundoff blowup.
  const Rule rule = bini322();
  const auto opts = small_problem();
  const auto result = optimize_lambda(rule, opts);
  const double at_large = measure_error(rule, 0.25, opts);
  const double at_small = measure_error(rule, std::exp2(-22), opts);
  EXPECT_GT(at_large, result.best_error * 3);
  EXPECT_GT(at_small, result.best_error * 3);
}

TEST(LambdaOpt, MeasureErrorDeterministicForSeed) {
  const Rule rule = bini322();
  const auto opts = small_problem();
  EXPECT_DOUBLE_EQ(measure_error(rule, 1e-3, opts), measure_error(rule, 1e-3, opts));
}

TEST(LambdaOpt, HigherPhiMeansLargerBestError) {
  // apa664 has phi = 2 -> error ~2^(-23/3); bini has phi = 1 -> ~2^(-11.5).
  LambdaSearchOptions opts;
  opts.dim = 72;  // divisible by 6 and 4
  const auto bini = optimize_lambda(rule_by_name("bini322"), opts);
  const auto apa664 = optimize_lambda(rule_by_name("apa664"), opts);
  EXPECT_GT(apa664.best_error, bini.best_error);
}

TEST(LambdaOpt, ProbesAreConsecutivePowersOfTwo) {
  const auto result = optimize_lambda(bini322(), small_problem());
  for (std::size_t i = 1; i < result.probes.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.probes[i].first / result.probes[i - 1].first, 2.0);
  }
}

}  // namespace
}  // namespace apa::core
