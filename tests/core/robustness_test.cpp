// Failure-injection and adversarial-input tests across the core stack.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "blas/gemm.h"
#include "core/catalog.h"
#include "core/designer.h"
#include "core/executor.h"
#include "core/fastmm.h"
#include "core/registry.h"
#include "support/rng.h"

namespace apa::core {
namespace {

TEST(Robustness, NanInputsPropagateNotCrash) {
  const Rule& rule = rule_by_name("strassen");
  Matrix<float> a(8, 8), b(8, 8), c(8, 8);
  a.set_zero();
  b.set_zero();
  a(0, 0) = std::numeric_limits<float>::quiet_NaN();
  b(0, 0) = 1.0f;
  multiply<float>(rule, a.view().as_const(), b.view().as_const(), c.view(), {});
  EXPECT_TRUE(std::isnan(c(0, 0)));
  // Blocks untouched by the NaN stay finite.
  EXPECT_TRUE(std::isfinite(c(7, 7)));
}

TEST(Robustness, InfInputsStayInf) {
  const Rule& rule = rule_by_name("bini322");
  Matrix<float> a(6, 6), b(6, 6), c(6, 6);
  a.set_zero();
  b.set_zero();
  a(0, 0) = std::numeric_limits<float>::infinity();
  b(0, 0) = 2.0f;
  ExecOptions opts;
  opts.lambda = 0.001;
  multiply<float>(rule, a.view().as_const(), b.view().as_const(), c.view(), opts);
  EXPECT_FALSE(std::isfinite(c(0, 0)));
}

TEST(Robustness, ExtremeMagnitudesDoNotOverflowForExactRules) {
  const Rule& rule = rule_by_name("fast444");
  Matrix<double> a(8, 8), b(8, 8), c(8, 8);
  for (auto& x : a.span()) x = 1e150;
  for (auto& x : b.span()) x = 1e-150;
  multiply<double>(rule, a.view().as_const(), b.view().as_const(), c.view(), {});
  for (auto x : c.span()) {
    EXPECT_NEAR(x, 8.0, 1e-10);  // sum of 8 unit products
  }
}

TEST(Robustness, DegenerateShapes) {
  // 1 x k times k x 1 down to scalars; every registry algorithm must fall
  // back gracefully.
  Rng rng(1);
  for (const auto& name : algorithm_names()) {
    const Rule& rule = rule_by_name(name);
    Matrix<float> a(1, 17), b(17, 1), c(1, 1), ref(1, 1);
    fill_random_uniform<float>(a.view(), rng);
    fill_random_uniform<float>(b.view(), rng);
    blas::gemm_reference<float>(blas::Trans::kNo, blas::Trans::kNo, 1, 1, 17, 1.0f,
                                a.data(), a.ld(), b.data(), b.ld(), 0.0f, ref.data(),
                                ref.ld());
    multiply<float>(rule, a.view().as_const(), b.view().as_const(), c.view(), {});
    EXPECT_NEAR(c(0, 0), ref(0, 0), 1e-3) << name;
  }
}

TEST(Robustness, LambdaExtremesStayFiniteInDouble) {
  const Rule& rule = rule_by_name("bini322");
  Rng rng(2);
  Matrix<double> a(12, 12), b(12, 12), c(12, 12);
  fill_random_uniform<double>(a.view(), rng);
  fill_random_uniform<double>(b.view(), rng);
  for (double lambda_value : {1.0, 1e-8, 1e-14}) {
    ExecOptions opts;
    opts.lambda = lambda_value;
    multiply<double>(rule, a.view().as_const(), b.view().as_const(), c.view(), opts);
    for (auto x : c.span()) EXPECT_TRUE(std::isfinite(x)) << "lambda=" << lambda_value;
  }
}

TEST(Robustness, ValidateSurvivesLargeCoefficients) {
  // Coefficients near the int64 overflow edge must either validate cleanly or
  // throw std::overflow_error — never silently corrupt.
  Rule rule = classical(1, 1, 1);
  rule.U(0, 0, 0) = LaurentPoly(Rational(std::int64_t{1} << 40));
  rule.V(0, 0, 0) = LaurentPoly(Rational(1, std::int64_t{1} << 40));
  EXPECT_NO_THROW({
    const Validation v = validate(rule);
    EXPECT_TRUE(v.valid);  // (2^40) * (2^-40) * 1 = 1
  });

  Rule overflow_rule = classical(1, 1, 1);
  overflow_rule.U(0, 0, 0) = LaurentPoly(Rational(std::int64_t{1} << 62));
  overflow_rule.V(0, 0, 0) = LaurentPoly(Rational(std::int64_t{1} << 62));
  EXPECT_THROW((void)validate(overflow_rule), std::overflow_error);
}

TEST(Robustness, DesignerRejectsNonPositiveDims) {
  EXPECT_THROW((void)design(0, 2, 2), std::logic_error);
  EXPECT_THROW((void)design(2, -1, 2), std::logic_error);
}

TEST(Robustness, ExecutorZeroSizedProblem) {
  const Rule& rule = rule_by_name("strassen");
  Matrix<float> a(0, 0), b(0, 0), c(0, 0);
  EXPECT_NO_THROW(multiply<float>(rule, a.view().as_const(), b.view().as_const(),
                                  c.view(), {}));
}

TEST(Robustness, RepeatedFastMatmulCallsAreDeterministic) {
  FastMatmul mm("apa664");
  Rng rng(5);
  Matrix<float> a(48, 48), b(48, 48), c1(48, 48), c2(48, 48);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  mm.multiply(a.view().as_const(), b.view().as_const(), c1.view());
  for (int i = 0; i < 5; ++i) {
    mm.multiply(a.view().as_const(), b.view().as_const(), c2.view());
    ASSERT_EQ(max_abs_diff(c1.view(), c2.view()), 0.0) << "iteration " << i;
  }
}

}  // namespace
}  // namespace apa::core
