// Failure-injection and adversarial-input tests across the core stack, plus
// the numerical-health guard layer: Freivalds verification, exact-gemm
// fallback/quarantine, and trainer-level divergence rollback.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>

#include "blas/gemm.h"
#include "core/catalog.h"
#include "core/designer.h"
#include "core/executor.h"
#include "core/fastmm.h"
#include "core/guard.h"
#include "core/registry.h"
#include "data/synthetic_mnist.h"
#include "nn/checkpoint.h"
#include "nn/guarded_backend.h"
#include "nn/trainer.h"
#include "support/check.h"
#include "support/rng.h"
#include "support/timer.h"

namespace apa::core {
namespace {

TEST(Robustness, NanInputsPropagateNotCrash) {
  const Rule& rule = rule_by_name("strassen");
  Matrix<float> a(8, 8), b(8, 8), c(8, 8);
  a.set_zero();
  b.set_zero();
  a(0, 0) = std::numeric_limits<float>::quiet_NaN();
  b(0, 0) = 1.0f;
  multiply<float>(rule, a.view().as_const(), b.view().as_const(), c.view(), {});
  EXPECT_TRUE(std::isnan(c(0, 0)));
  // Blocks untouched by the NaN stay finite.
  EXPECT_TRUE(std::isfinite(c(7, 7)));
}

TEST(Robustness, InfInputsStayInf) {
  const Rule& rule = rule_by_name("bini322");
  Matrix<float> a(6, 6), b(6, 6), c(6, 6);
  a.set_zero();
  b.set_zero();
  a(0, 0) = std::numeric_limits<float>::infinity();
  b(0, 0) = 2.0f;
  ExecOptions opts;
  opts.lambda = 0.001;
  multiply<float>(rule, a.view().as_const(), b.view().as_const(), c.view(), opts);
  EXPECT_FALSE(std::isfinite(c(0, 0)));
}

TEST(Robustness, ExtremeMagnitudesDoNotOverflowForExactRules) {
  const Rule& rule = rule_by_name("fast444");
  Matrix<double> a(8, 8), b(8, 8), c(8, 8);
  for (auto& x : a.span()) x = 1e150;
  for (auto& x : b.span()) x = 1e-150;
  multiply<double>(rule, a.view().as_const(), b.view().as_const(), c.view(), {});
  for (auto x : c.span()) {
    EXPECT_NEAR(x, 8.0, 1e-10);  // sum of 8 unit products
  }
}

TEST(Robustness, DegenerateShapes) {
  // 1 x k times k x 1 down to scalars; every registry algorithm must fall
  // back gracefully.
  Rng rng(1);
  for (const auto& name : algorithm_names()) {
    const Rule& rule = rule_by_name(name);
    Matrix<float> a(1, 17), b(17, 1), c(1, 1), ref(1, 1);
    fill_random_uniform<float>(a.view(), rng);
    fill_random_uniform<float>(b.view(), rng);
    blas::gemm_reference<float>(blas::Trans::kNo, blas::Trans::kNo, 1, 1, 17, 1.0f,
                                a.data(), a.ld(), b.data(), b.ld(), 0.0f, ref.data(),
                                ref.ld());
    multiply<float>(rule, a.view().as_const(), b.view().as_const(), c.view(), {});
    EXPECT_NEAR(c(0, 0), ref(0, 0), 1e-3) << name;
  }
}

TEST(Robustness, LambdaExtremesStayFiniteInDouble) {
  const Rule& rule = rule_by_name("bini322");
  Rng rng(2);
  Matrix<double> a(12, 12), b(12, 12), c(12, 12);
  fill_random_uniform<double>(a.view(), rng);
  fill_random_uniform<double>(b.view(), rng);
  for (double lambda_value : {1.0, 1e-8, 1e-14}) {
    ExecOptions opts;
    opts.lambda = lambda_value;
    multiply<double>(rule, a.view().as_const(), b.view().as_const(), c.view(), opts);
    for (auto x : c.span()) EXPECT_TRUE(std::isfinite(x)) << "lambda=" << lambda_value;
  }
}

TEST(Robustness, ValidateSurvivesLargeCoefficients) {
  // Coefficients near the int64 overflow edge must either validate cleanly or
  // throw std::overflow_error — never silently corrupt.
  Rule rule = classical(1, 1, 1);
  rule.U(0, 0, 0) = LaurentPoly(Rational(std::int64_t{1} << 40));
  rule.V(0, 0, 0) = LaurentPoly(Rational(1, std::int64_t{1} << 40));
  EXPECT_NO_THROW({
    const Validation v = validate(rule);
    EXPECT_TRUE(v.valid);  // (2^40) * (2^-40) * 1 = 1
  });

  Rule overflow_rule = classical(1, 1, 1);
  overflow_rule.U(0, 0, 0) = LaurentPoly(Rational(std::int64_t{1} << 62));
  overflow_rule.V(0, 0, 0) = LaurentPoly(Rational(std::int64_t{1} << 62));
  EXPECT_THROW((void)validate(overflow_rule), std::overflow_error);
}

TEST(Robustness, DesignerRejectsNonPositiveDims) {
  EXPECT_THROW((void)design(0, 2, 2), std::logic_error);
  EXPECT_THROW((void)design(2, -1, 2), std::logic_error);
}

TEST(Robustness, ExecutorZeroSizedProblem) {
  const Rule& rule = rule_by_name("strassen");
  Matrix<float> a(0, 0), b(0, 0), c(0, 0);
  EXPECT_NO_THROW(multiply<float>(rule, a.view().as_const(), b.view().as_const(),
                                  c.view(), {}));
}

TEST(Robustness, RepeatedFastMatmulCallsAreDeterministic) {
  FastMatmul mm("apa664");
  Rng rng(5);
  Matrix<float> a(48, 48), b(48, 48), c1(48, 48), c2(48, 48);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  mm.multiply(a.view().as_const(), b.view().as_const(), c1.view());
  for (int i = 0; i < 5; ++i) {
    mm.multiply(a.view().as_const(), b.view().as_const(), c2.view());
    ASSERT_EQ(max_abs_diff(c1.view(), c2.view()), 0.0) << "iteration " << i;
  }
}

// ---------------------------------------------------------------------------
// Structured error taxonomy

TEST(Robustness, ApaErrorTaxonomyDistinguishesRecoverableFailures) {
  const ApaError guard_trip(ErrorCode::kGuardTripped, "apa output rejected");
  EXPECT_EQ(guard_trip.code(), ErrorCode::kGuardTripped);
  EXPECT_TRUE(guard_trip.recoverable());
  EXPECT_NE(std::string(guard_trip.what()).find("kGuardTripped"), std::string::npos);

  const ApaError shape(ErrorCode::kShapeMismatch, "bad dims");
  EXPECT_FALSE(shape.recoverable());

  // APA_CHECK failures surface as ApaError{kPrecondition} and stay catchable
  // as std::logic_error for legacy call sites.
  try {
    APA_CHECK_MSG(false, "forced");
    FAIL() << "check must throw";
  } catch (const ApaError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPrecondition);
    EXPECT_FALSE(e.recoverable());
  }
  EXPECT_THROW((void)FastMatmul("no_such_rule"), std::logic_error);
}

// ---------------------------------------------------------------------------
// ProductGuard: Freivalds verification of APA outputs

TEST(Robustness, GuardPassesHonestApaMultiply) {
  FastMatmul mm("bini322");  // optimal lambda
  Rng rng(11);
  Matrix<float> a(72, 72), b(72, 72), c(72, 72);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  mm.multiply(a.view().as_const(), b.view().as_const(), c.view());

  const double bound = ProductGuard::model_error_bound(mm.params(), 23, 1);
  const ProductGuard guard(bound);
  const GuardReport report =
      guard.verify(a.view().as_const(), b.view().as_const(), c.view().as_const(), rng);
  EXPECT_TRUE(report.ok) << "worst ratio " << report.worst_ratio;
  EXPECT_FALSE(report.nonfinite_output);
}

TEST(Robustness, GuardPassesHonestProductWithZeroRows) {
  // Dead-ReLU regime: whole rows of A are zero. Block APA rules leak
  // O(lambda^sigma) of neighboring block rows into those output rows, so a
  // per-row tolerance would flag every honest sparse row; the matrix-level
  // scale must not.
  FastMatmul mm("bini322");  // optimal lambda
  Rng rng(26);
  Matrix<float> a(72, 72), b(72, 72), c(72, 72);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  for (index_t i = 0; i < 72; i += 3) {
    for (index_t t = 0; t < 72; ++t) a(i, t) = 0.0f;
  }
  mm.multiply(a.view().as_const(), b.view().as_const(), c.view());

  const ProductGuard guard(ProductGuard::model_error_bound(mm.params(), 23, 1));
  const GuardReport report =
      guard.verify(a.view().as_const(), b.view().as_const(), c.view().as_const(), rng);
  EXPECT_TRUE(report.ok) << "worst ratio " << report.worst_ratio;
}

TEST(Robustness, GuardTripsOnMistunedLambda) {
  // lambda = 0.5 puts ~50% relative error on the product — far outside the
  // sigma/phi regime the tolerance is derived from.
  FastMatmul mm("bini322", {.lambda = 0.5});
  Rng rng(12);
  Matrix<float> a(72, 72), b(72, 72), c(72, 72);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  mm.multiply(a.view().as_const(), b.view().as_const(), c.view());

  // The tolerance must come from the rule's *validated* error model, never
  // from the lambda actually in use — a corrupt lambda cannot loosen its own
  // tolerance.
  const double bound = ProductGuard::model_error_bound(mm.params(), 23, 1);
  const ProductGuard guard(bound);
  const GuardReport report =
      guard.verify(a.view().as_const(), b.view().as_const(), c.view().as_const(), rng);
  EXPECT_FALSE(report.ok);
  EXPECT_GT(report.worst_ratio, 1.0);
  EXPECT_FALSE(report.nonfinite_output);
}

TEST(Robustness, GuardFlagsNonfiniteOutput) {
  Rng rng(13);
  Matrix<float> a(16, 16), b(16, 16), c(16, 16);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  blas::gemm<float>(a.view().as_const(), b.view().as_const(), c.view());
  c(3, 5) = std::numeric_limits<float>::quiet_NaN();

  const ProductGuard guard(1e-6);
  const GuardReport report =
      guard.verify(a.view().as_const(), b.view().as_const(), c.view().as_const(), rng);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.nonfinite_output);
}

TEST(Robustness, GuardVerifiesTransposedOperands) {
  Rng rng(14);
  Matrix<float> a(48, 40), b(48, 56), c(40, 56);  // C = A^T * B
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  blas::gemm<float>(blas::Trans::kYes, blas::Trans::kNo, 40, 56, 48, 1.0f, a.data(),
                    a.ld(), b.data(), b.ld(), 0.0f, c.data(), c.ld());
  const ProductGuard guard(std::exp2(-23));
  EXPECT_TRUE(guard
                  .verify(a.view().as_const(), b.view().as_const(),
                          c.view().as_const(), rng, /*transpose_a=*/true)
                  .ok);

  c(7, 9) += 25.0f;  // corruption well above the row tolerance
  EXPECT_FALSE(guard
                   .verify(a.view().as_const(), b.view().as_const(),
                           c.view().as_const(), rng, /*transpose_a=*/true)
                   .ok);
}

TEST(Robustness, GuardShapeMismatchIsStructured) {
  Matrix<float> a(8, 8), b(8, 8), c(8, 7);
  Rng rng(15);
  const ProductGuard guard(1e-6);
  try {
    (void)guard.verify(a.view().as_const(), b.view().as_const(), c.view().as_const(),
                       rng);
    FAIL() << "mismatched C must throw";
  } catch (const ApaError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kShapeMismatch);
  }
}

TEST(Robustness, GuardFalsePositiveRateOnHonestMultiplies) {
  // Statistical check: honest products at optimal lambda must essentially
  // never trip. 60 products across the error classes in the catalog
  // (phi = 0 exact, phi = 1, phi = 2), fresh operands and probes each time.
  Rng rng(16);
  int trips = 0;
  int checked = 0;
  for (const std::string name : {"strassen", "bini322", "apa664"}) {
    FastMatmul mm(name);
    const double bound = ProductGuard::model_error_bound(mm.params(), 23, 1);
    const ProductGuard guard(bound);
    for (int rep = 0; rep < 20; ++rep) {
      Matrix<float> a(60, 60), b(60, 60), c(60, 60);
      fill_random_uniform<float>(a.view(), rng);
      fill_random_uniform<float>(b.view(), rng);
      mm.multiply(a.view().as_const(), b.view().as_const(), c.view());
      const GuardReport report = guard.verify(a.view().as_const(), b.view().as_const(),
                                              c.view().as_const(), rng);
      trips += report.ok ? 0 : 1;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 60);
  EXPECT_EQ(trips, 0) << "false positives on honest multiplies";
}

TEST(Robustness, GuardOverheadSmallFractionOfMultiplyTime) {
  // Acceptance bound: Freivalds is O(mn + kn + mk) against the O(mkn)
  // product — under 10% of backend matmul time at fast-path sizes.
  FastMatmul mm("bini322");
  Rng rng(17);
  const index_t n = 768;
  Matrix<float> a(n, n), b(n, n), c(n, n);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  mm.multiply(a.view().as_const(), b.view().as_const(), c.view());  // warm-up

  double multiply_seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    WallTimer timer;
    mm.multiply(a.view().as_const(), b.view().as_const(), c.view());
    multiply_seconds = std::min(multiply_seconds, timer.seconds());
  }

  const ProductGuard guard(ProductGuard::model_error_bound(mm.params(), 23, 1));
  double verify_seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    WallTimer timer;
    const GuardReport report = guard.verify(a.view().as_const(), b.view().as_const(),
                                            c.view().as_const(), rng);
    ASSERT_TRUE(report.ok);
    verify_seconds = std::min(verify_seconds, timer.seconds());
  }
  EXPECT_LT(verify_seconds, 0.10 * multiply_seconds)
      << "verify " << verify_seconds << "s vs multiply " << multiply_seconds << "s";
}

// ---------------------------------------------------------------------------
// GuardedBackend: fallback + quarantine policy

nn::BackendOptions corrupt_lambda_options(double lambda) {
  nn::BackendOptions options;
  options.matmul.lambda = lambda;
  options.min_dim_for_fast = 32;
  return options;
}

TEST(Robustness, GuardedBackendFallsBackToExactGemmOnBadLambda) {
  const nn::GuardedBackend guarded("bini322", corrupt_lambda_options(0.5));
  Rng rng(18);
  Matrix<float> a(64, 64), b(64, 64), c(64, 64), ref(64, 64);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  guarded.matmul(a.view().as_const(), b.view().as_const(), c.view());
  blas::gemm<float>(a.view().as_const(), b.view().as_const(), ref.view());

  // The guard must have rejected the APA product and re-run with gemm, so the
  // caller sees the exact result.
  EXPECT_LT(relative_frobenius_error(c.view(), ref.view()), 1e-5);
  const nn::GuardStats stats = guarded.stats();
  EXPECT_EQ(stats.fast_calls, 1u);
  EXPECT_EQ(stats.checks_run, 1u);
  EXPECT_EQ(stats.trips_tolerance, 1u);
  EXPECT_EQ(stats.fallback_reruns, 1u);
}

TEST(Robustness, GuardedBackendQuarantinesShapeAfterRepeatedTrips) {
  nn::GuardPolicy policy;
  policy.quarantine_after = 2;
  const nn::GuardedBackend guarded("bini322", corrupt_lambda_options(0.5), policy);
  Rng rng(19);
  Matrix<float> a(64, 64), b(64, 64), c(64, 64);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  for (int call = 0; call < 5; ++call) {
    guarded.matmul(a.view().as_const(), b.view().as_const(), c.view());
  }
  const nn::GuardStats stats = guarded.stats();
  EXPECT_EQ(stats.trips_tolerance, 2u);      // third call onward never re-tries APA
  EXPECT_EQ(stats.checks_run, 2u);
  EXPECT_EQ(stats.shapes_quarantined, 1u);
  EXPECT_EQ(stats.quarantined_calls, 3u);
  EXPECT_TRUE(guarded.is_quarantined(64, 64, 64));
  EXPECT_FALSE(guarded.is_quarantined(96, 96, 96));
}

TEST(Robustness, GuardedBackendNanInjectionTriggersFallback) {
  const nn::GuardedBackend guarded("bini322", corrupt_lambda_options(1.0));
  Rng rng(20);
  Matrix<float> a(64, 64), b(64, 64), c(64, 64);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  a(0, 0) = std::numeric_limits<float>::quiet_NaN();
  guarded.matmul(a.view().as_const(), b.view().as_const(), c.view());
  const nn::GuardStats stats = guarded.stats();
  EXPECT_EQ(stats.trips_nonfinite, 1u);
  EXPECT_EQ(stats.fallback_reruns, 1u);
  // The inputs carried the NaN, so the exact rerun rightly reproduces it.
  EXPECT_TRUE(std::isnan(c(0, 0)));
}

TEST(Robustness, GuardedBackendHonestRunNeverTrips) {
  nn::BackendOptions options;
  options.min_dim_for_fast = 32;
  const nn::GuardedBackend guarded("bini322", options);
  Rng rng(21);
  for (int call = 0; call < 10; ++call) {
    Matrix<float> a(48, 48), b(48, 48), c(48, 48);
    fill_random_uniform<float>(a.view(), rng);
    fill_random_uniform<float>(b.view(), rng);
    guarded.matmul(a.view().as_const(), b.view().as_const(), c.view());
  }
  const nn::GuardStats stats = guarded.stats();
  EXPECT_EQ(stats.fast_calls, 10u);
  EXPECT_EQ(stats.total_trips(), 0u);
  EXPECT_EQ(stats.fallback_reruns, 0u);
}

// ---------------------------------------------------------------------------
// Trainer-level divergence rollback

data::Dataset guard_dataset(index_t count, std::uint64_t seed = 3) {
  data::SyntheticMnistOptions opts;
  opts.train_size = count;
  opts.test_size = 1;
  opts.seed = seed;
  return std::move(data::make_synthetic_mnist(opts).train);
}

TEST(Robustness, TrainerRollbackRecoversFromRoundoffExplosion) {
  // lambda = 1e-12 amplifies roundoff by lambda^-phi = 1e12: activations
  // explode and the loss goes non-finite almost immediately. The guard must
  // roll back to the auto-checkpoint, snap lambda to the rule's optimum, and
  // finish the epoch with healthy numbers.
  auto data = guard_dataset(600);
  nn::MlpConfig config;
  config.layer_sizes = {784, 64, 64, 10};
  config.learning_rate = 0.05f;
  nn::Mlp mlp(config, nn::MatmulBackend("bini322", corrupt_lambda_options(1e-12)),
              nn::MatmulBackend("classical"));

  nn::TrainGuardOptions guard;
  guard.enabled = true;
  guard.checkpoint_every = 3;
  guard.warmup_steps = 1;  // corrupt from step 0: spike-detect against step 1
  nn::TrainGuardReport report;
  Rng rng(22);
  const nn::EpochStats stats = nn::train_epoch(mlp, data, 64, &rng, guard, &report);

  EXPECT_GE(report.recoveries, 1);
  EXPECT_GE(report.lambda_shrinks, 1);
  EXPECT_TRUE(std::isfinite(stats.mean_loss));
  EXPECT_GT(stats.steps, 0);
  // lambda snapped to the optimum, not shrunk below it.
  const double optimal =
      core::analyze(core::rule_by_name("bini322")).optimal_lambda(23, 1);
  EXPECT_NEAR(report.final_lambda, optimal, optimal * 1e-6);
  // Post-recovery weights are sane: predictions are finite.
  Matrix<float> logits(4, 10);
  mlp.predict(data.batch_images(0, 4), logits.view());
  for (const float x : logits.span()) EXPECT_TRUE(std::isfinite(x));
}

TEST(Robustness, TrainerThrowsStructuredErrorWhenRecoveryBudgetExhausted) {
  // A divergence the backend cannot fix (exploding learning rate on the
  // classical backend) must surface as ApaError{kDiverged} after the bounded
  // rollback attempts, never loop forever or return garbage.
  auto data = guard_dataset(600);
  nn::MlpConfig config;
  config.layer_sizes = {784, 32, 10};
  config.learning_rate = 1e8f;
  nn::Mlp mlp(config, nn::MatmulBackend("classical"), nn::MatmulBackend("classical"));

  nn::TrainGuardOptions guard;
  guard.enabled = true;
  guard.max_recoveries = 2;
  guard.warmup_steps = 1;  // the explosion keeps the loss finite; catch the spike
  nn::TrainGuardReport report;
  try {
    (void)nn::train_epoch(mlp, data, 64, nullptr, guard, &report);
    FAIL() << "unrecoverable divergence must throw";
  } catch (const ApaError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDiverged);
    EXPECT_TRUE(e.recoverable());
  }
  EXPECT_EQ(report.recoveries, 2);
}

TEST(Robustness, RollbackMechanismRestoresPreDivergenceWeights) {
  // The exact mechanism the trainer uses on divergence: checkpoint, corrupt
  // (as a diverging step would), restore — predictions must match bit-exactly.
  auto data = guard_dataset(200);
  nn::MlpConfig config;
  config.layer_sizes = {784, 32, 10};
  nn::Mlp mlp(config, nn::MatmulBackend("classical"), nn::MatmulBackend("classical"));
  Rng rng(23);
  (void)nn::train_epoch(mlp, data, 50, &rng);

  Matrix<float> before(8, 10);
  mlp.predict(data.batch_images(0, 8), before.view());

  const std::string path =
      (std::filesystem::temp_directory_path() / "apamm_rollback_test.ckpt").string();
  nn::save_checkpoint(path, mlp);
  for (auto& w : mlp.layer(0).weights().span()) {
    w = std::numeric_limits<float>::quiet_NaN();
  }
  nn::load_checkpoint(path, mlp);
  std::remove(path.c_str());

  Matrix<float> after(8, 10);
  mlp.predict(data.batch_images(0, 8), after.view());
  EXPECT_EQ(max_abs_diff(before.view(), after.view()), 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end acceptance: guarded APA training under a corrupted lambda

TEST(Robustness, GuardedTrainingSurvivesCorruptLambdaEndToEnd) {
  data::SyntheticMnistOptions gen;
  gen.train_size = 2000;
  gen.test_size = 500;

  nn::MlpConfig config;
  config.layer_sizes = {784, 128, 128, 10};
  config.learning_rate = 0.1f;
  const index_t batch = 100;
  const int epochs = 3;
  constexpr double kCorruptLambda = 0.5;

  const auto train = [&](std::shared_ptr<const nn::MatmulBackend> fast,
                         bool guarded_loop) {
    auto splits = data::make_synthetic_mnist(gen);
    nn::Mlp mlp(config, std::move(fast),
                std::make_shared<const nn::MatmulBackend>("classical"));
    Rng rng(24);
    nn::TrainGuardOptions guard;
    guard.enabled = guarded_loop;
    for (int epoch = 0; epoch < epochs; ++epoch) {
      try {
        (void)nn::train_epoch(mlp, splits.train, batch, &rng, guard);
      } catch (const ApaError& e) {
        // Unguarded divergence can reach non-finite losses; for this
        // comparison that counts as zero accuracy.
        if (e.code() != ErrorCode::kDiverged) throw;
        return 0.0;
      }
    }
    return nn::evaluate_accuracy(mlp, splits.test);
  };

  const double acc_classical = train(
      std::make_shared<const nn::MatmulBackend>("classical"), false);
  const double acc_corrupt_unguarded = train(
      std::make_shared<const nn::MatmulBackend>("bini322",
                                                corrupt_lambda_options(kCorruptLambda)),
      false);
  const double acc_corrupt_guarded = train(
      std::make_shared<const nn::GuardedBackend>("bini322",
                                                 corrupt_lambda_options(kCorruptLambda)),
      true);

  // Guard enabled: every corrupted product is caught, re-run exactly, and the
  // shape quarantined — accuracy within 1% of the classical baseline.
  EXPECT_GT(acc_corrupt_guarded, acc_classical - 0.01)
      << "classical=" << acc_classical << " guarded=" << acc_corrupt_guarded;
  // Guard disabled: the same corruption diverges or costs >= 5% accuracy.
  EXPECT_LT(acc_corrupt_unguarded, acc_classical - 0.05)
      << "classical=" << acc_classical << " unguarded=" << acc_corrupt_unguarded;
}

}  // namespace
}  // namespace apa::core
