#include "core/transforms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/catalog.h"
#include "core/params.h"

namespace apa::core {
namespace {

void expect_valid(const Rule& rule, bool exact, int sigma) {
  const Validation v = validate(rule);
  ASSERT_TRUE(v.valid) << rule.name << ": " << v.message;
  EXPECT_EQ(v.exact, exact) << rule.name;
  EXPECT_EQ(v.sigma, sigma) << rule.name;
}

TEST(Transforms, TransposeSwapsOuterDims) {
  const Rule t = transpose_rule(bini322());
  EXPECT_EQ(t.m, 2);
  EXPECT_EQ(t.k, 2);
  EXPECT_EQ(t.n, 3);
  EXPECT_EQ(t.rank, 10);
  expect_valid(t, /*exact=*/false, /*sigma=*/1);
}

TEST(Transforms, CycleRotatesDims) {
  const Rule c = cycle_rule(bini322());
  EXPECT_EQ(c.m, 2);
  EXPECT_EQ(c.k, 2);
  EXPECT_EQ(c.n, 3);
  expect_valid(c, false, 1);
}

TEST(Transforms, AllSixPermutationsOfBiniAreValid) {
  // Expected dims per perm id: see permute_rule docs.
  const index_t expected[6][3] = {{3, 2, 2}, {2, 2, 3}, {2, 3, 2},
                                  {2, 2, 3}, {3, 2, 2}, {2, 3, 2}};
  for (int perm = 0; perm < 6; ++perm) {
    const Rule r = permute_rule(bini322(), perm);
    EXPECT_EQ(r.m, expected[perm][0]) << perm;
    EXPECT_EQ(r.k, expected[perm][1]) << perm;
    EXPECT_EQ(r.n, expected[perm][2]) << perm;
    expect_valid(r, false, 1);
    EXPECT_EQ(compute_phi(r), 1) << "phi invariant under permutation, perm=" << perm;
  }
}

TEST(Transforms, PermutationsOfStrassenStayExact) {
  for (int perm = 0; perm < 6; ++perm) {
    expect_valid(permute_rule(strassen(), perm), true, 0);
  }
}

TEST(Transforms, TransposeIsInvolution) {
  const Rule once = transpose_rule(strassen());
  const Rule twice = transpose_rule(once);
  const Rule orig = strassen();
  EXPECT_EQ(twice.u, orig.u);
  EXPECT_EQ(twice.v, orig.v);
  EXPECT_EQ(twice.w, orig.w);
}

TEST(Transforms, CycleHasOrderThree) {
  const Rule orig = bini322();
  const Rule thrice = cycle_rule(cycle_rule(cycle_rule(orig)));
  EXPECT_EQ(thrice.u, orig.u);
  EXPECT_EQ(thrice.v, orig.v);
  EXPECT_EQ(thrice.w, orig.w);
}

TEST(Transforms, DirectSumM) {
  // <3,2,2;10> + <1,2,2;4> = <4,2,2;14> — the paper's <4,2,2> substitute.
  const Rule r = direct_sum_m(bini322(), classical(1, 2, 2));
  EXPECT_EQ(r.m, 4);
  EXPECT_EQ(r.k, 2);
  EXPECT_EQ(r.n, 2);
  EXPECT_EQ(r.rank, 14);
  expect_valid(r, false, 1);
  EXPECT_EQ(compute_phi(r), 1);
}

TEST(Transforms, DirectSumK) {
  // <3,2,2;10> +_k <3,1,2;6> = <3,3,2;16>.
  const Rule r = direct_sum_k(bini322(), classical(3, 1, 2));
  EXPECT_EQ(r.m, 3);
  EXPECT_EQ(r.k, 3);
  EXPECT_EQ(r.n, 2);
  EXPECT_EQ(r.rank, 16);
  expect_valid(r, false, 1);
}

TEST(Transforms, DirectSumN) {
  const Rule r = direct_sum_n(strassen(), classical(2, 2, 1));
  EXPECT_EQ(r.m, 2);
  EXPECT_EQ(r.k, 2);
  EXPECT_EQ(r.n, 3);
  EXPECT_EQ(r.rank, 11);
  expect_valid(r, true, 0);
}

TEST(Transforms, DirectSumDimMismatchThrows) {
  EXPECT_THROW((void)direct_sum_m(strassen(), classical(1, 3, 2)), std::logic_error);
  EXPECT_THROW((void)direct_sum_k(strassen(), classical(3, 1, 2)), std::logic_error);
  EXPECT_THROW((void)direct_sum_n(strassen(), classical(2, 3, 1)), std::logic_error);
}

TEST(Transforms, TensorStrassenSquaredIs444Rank49) {
  const Rule r = tensor_product(strassen(), strassen());
  EXPECT_EQ(r.m, 4);
  EXPECT_EQ(r.k, 4);
  EXPECT_EQ(r.n, 4);
  EXPECT_EQ(r.rank, 49);
  expect_valid(r, true, 0);
  EXPECT_EQ(compute_phi(r), 0);
}

TEST(Transforms, TensorBiniTimesStrassenIsApa) {
  // <3,2,2;10> x <2,2,2;7> = <6,4,4;70>, sigma=1, phi=1 (only one factor
  // carries lambda).
  const Rule r = tensor_product(bini322(), strassen());
  EXPECT_EQ(r.m, 6);
  EXPECT_EQ(r.k, 4);
  EXPECT_EQ(r.n, 4);
  EXPECT_EQ(r.rank, 70);
  expect_valid(r, false, 1);
  EXPECT_EQ(compute_phi(r), 1);
}

TEST(Transforms, TensorBiniTimesBiniPermDoublesPhi) {
  // <3,2,2> x <2,3,2> = <6,6,4;100>; lambda degrees add: phi = 2, and the
  // leading residual is still O(lambda) (cross terms exact x lambda-error).
  const Rule r = tensor_product(bini322(), permute_rule(bini322(), 2));
  EXPECT_EQ(r.m, 6);
  EXPECT_EQ(r.k, 6);
  EXPECT_EQ(r.n, 4);
  EXPECT_EQ(r.rank, 100);
  const Validation v = validate(r);
  ASSERT_TRUE(v.valid) << v.message;
  EXPECT_EQ(v.sigma, 1);
  EXPECT_EQ(compute_phi(r), 2);
}

TEST(Transforms, OrientRuleMatchesRankOrder) {
  const Rule base = tensor_product(strassen(), classical(2, 2, 1));  // <4,4,2>
  // Problem with tiny inner dimension: the 2 must land on k.
  const Rule dw = orient_rule(base, 25088, 64, 4096);
  EXPECT_EQ(dw.m, 4);
  EXPECT_EQ(dw.k, 2);
  EXPECT_EQ(dw.n, 4);
  // Problem with tiny m.
  const Rule fwd = orient_rule(base, 64, 25088, 4096);
  EXPECT_EQ(fwd.m, 2);
  // Square problems keep a valid orientation.
  const Rule sq = orient_rule(base, 512, 512, 512);
  EXPECT_EQ(sq.m * sq.k * sq.n, 32);
  EXPECT_TRUE(validate(sq).valid);
}

TEST(Transforms, OrientRuleIsValidForAllAspects) {
  const Rule base = bini322();
  for (const auto& [m, k, n] :
       {std::tuple<index_t, index_t, index_t>{1000, 10, 100},
        {10, 1000, 100},
        {100, 10, 1000},
        {7, 7, 7}}) {
    const Rule oriented = orient_rule(base, m, k, n);
    EXPECT_TRUE(validate(oriented).valid);
    // Largest rule dim on largest problem dim.
    const index_t rule_dims[3] = {oriented.m, oriented.k, oriented.n};
    const index_t problem[3] = {m, k, n};
    const auto argmax = [](const index_t* v) {
      return std::max_element(v, v + 3) - v;
    };
    EXPECT_EQ(rule_dims[argmax(problem)], 3) << m << "," << k << "," << n;
  }
}

TEST(Transforms, TensorWithClassicalScalesDims) {
  const Rule r = tensor_product(strassen(), classical(2, 2, 1));
  EXPECT_EQ(r.m, 4);
  EXPECT_EQ(r.k, 4);
  EXPECT_EQ(r.n, 2);
  EXPECT_EQ(r.rank, 28);
  expect_valid(r, true, 0);
}

}  // namespace
}  // namespace apa::core
