#include "dist/shard.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "data/synthetic_mnist.h"
#include "support/check.h"

namespace apa::dist {
namespace {

data::Dataset tiny_dataset(index_t rows) {
  data::SyntheticMnistOptions options;
  options.train_size = rows;
  options.test_size = 1;
  return data::make_synthetic_mnist(options).train;
}

TEST(PartitionRows, CoversEveryRowExactlyOnce) {
  const index_t total = 103;
  const int parts = 4;
  index_t covered = 0;
  index_t prev_end = 0;
  for (int p = 0; p < parts; ++p) {
    const RowRange range = partition_rows(total, parts, p);
    EXPECT_EQ(range.begin, prev_end);  // contiguous and disjoint
    prev_end = range.end;
    covered += range.size();
  }
  EXPECT_EQ(prev_end, total);
  EXPECT_EQ(covered, total);
}

TEST(PartitionRows, NearEqualSizes) {
  // 103 over 4: sizes 26, 26, 26, 25.
  EXPECT_EQ(partition_rows(103, 4, 0).size(), 26);
  EXPECT_EQ(partition_rows(103, 4, 3).size(), 25);
}

TEST(ShardFor, PositionInLiveSetPicksPartition) {
  const std::vector<int> live = {0, 2, 3};  // rank 1 died
  const RowRange r0 = shard_for(90, live, 0);
  const RowRange r2 = shard_for(90, live, 2);
  const RowRange r3 = shard_for(90, live, 3);
  EXPECT_EQ(r0.begin, 0);
  EXPECT_EQ(r0.end, r2.begin);
  EXPECT_EQ(r2.end, r3.begin);
  EXPECT_EQ(r3.end, 90);
  EXPECT_THROW(shard_for(90, live, 1), ApaError);
}

TEST(ShardLoader, BatchesAreDeterministicPerStep) {
  const data::Dataset dataset = tiny_dataset(64);
  ShardLoader a(&dataset, 8, 42);
  ShardLoader b(&dataset, 8, 42);
  a.reshard({0, 32});
  b.reshard({0, 32});
  // Drive the loaders through different access patterns; the bytes for a given
  // step must be identical anyway (rollback replay depends on this).
  const Batch b5_first = b.batch_at(5);
  for (index_t s = 0; s < 6; ++s) a.batch_at(s);
  const Batch a5 = a.batch_at(5);
  ASSERT_EQ(a5.images.size(), b5_first.images.size());
  EXPECT_EQ(max_abs_diff(a5.images.view(), b5_first.images.view()), 0.0);
  EXPECT_EQ(a5.labels, b5_first.labels);
}

TEST(ShardLoader, DifferentRangesDrawDifferentRows) {
  const data::Dataset dataset = tiny_dataset(64);
  ShardLoader a(&dataset, 8, 42);
  ShardLoader b(&dataset, 8, 42);
  a.reshard({0, 32});
  b.reshard({32, 64});
  const Batch ba = a.batch_at(0);
  const Batch bb = b.batch_at(0);
  EXPECT_NE(max_abs_diff(ba.images.view(), bb.images.view()), 0.0);
}

TEST(ShardLoader, ReshardKeepsDeterminism) {
  const data::Dataset dataset = tiny_dataset(64);
  ShardLoader loader(&dataset, 8, 7);
  loader.reshard({0, 32});
  loader.batch_at(0);
  loader.reshard({0, 64});  // degrade: survivor takes the whole set
  const Batch wide = loader.batch_at(1);

  ShardLoader fresh(&dataset, 8, 7);
  fresh.reshard({0, 64});
  const Batch expect = fresh.batch_at(1);
  EXPECT_EQ(max_abs_diff(wide.images.view(), expect.images.view()), 0.0);
  EXPECT_EQ(wide.labels, expect.labels);
}

TEST(ShardLoader, PrefetchEventuallyHits) {
  const data::Dataset dataset = tiny_dataset(64);
  ShardLoader loader(&dataset, 8, 1);
  loader.reshard({0, 64});
  loader.batch_at(0);  // always a miss; schedules step 1
  // Give the prefetch thread time, then consume what it built.
  std::int64_t hits = 0;
  for (index_t step = 1; step <= 20 && hits == 0; ++step) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    loader.batch_at(step);
    hits = loader.prefetch_hits();
  }
  EXPECT_GT(hits, 0);
  EXPECT_GT(loader.prefetch_misses(), 0);
}

TEST(ShardLoader, BatchShape) {
  const data::Dataset dataset = tiny_dataset(32);
  ShardLoader loader(&dataset, 8, 3);
  loader.reshard({0, 32});
  const Batch batch = loader.batch_at(0);
  EXPECT_EQ(batch.images.rows(), 8);
  EXPECT_EQ(batch.images.cols(), dataset.features());
  EXPECT_EQ(static_cast<index_t>(batch.labels.size()), 8);
}

}  // namespace
}  // namespace apa::dist
