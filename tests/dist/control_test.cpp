#include "dist/control.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/check.h"

namespace apa::dist {
namespace {

TEST(ControlBlock, StartsWithEveryoneAlive) {
  ControlBlock control(3, 0.5);
  EXPECT_EQ(control.live_count(), 3);
  EXPECT_EQ(control.coordinator(), 0);
  EXPECT_EQ(control.live_ranks(), (std::vector<int>{0, 1, 2}));
}

TEST(ControlBlock, MarkDeadShrinksLiveSetAndBumpsMembership) {
  ControlBlock control(3, 0.5);
  const std::uint64_t v0 = control.membership_version();
  control.mark_dead(0);
  EXPECT_FALSE(control.is_alive(0));
  EXPECT_EQ(control.live_count(), 2);
  EXPECT_EQ(control.coordinator(), 1);  // lowest live rank
  EXPECT_GT(control.membership_version(), v0);
  control.mark_dead(0);  // idempotent
  EXPECT_EQ(control.live_count(), 2);
}

TEST(ControlBlock, BarrierReleasesWhenAllArrive) {
  ControlBlock control(3, 5.0);
  std::vector<BarrierResult> results(3, BarrierResult::kAborted);
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      control.heartbeat(r);
      results[static_cast<std::size_t>(r)] = control.barrier(r, 1, 5.0);
    });
  }
  for (auto& t : threads) t.join();
  for (const BarrierResult result : results) {
    EXPECT_EQ(result, BarrierResult::kOk);
  }
}

TEST(ControlBlock, BarrierCompletesOverSurvivorsAfterMarkDead) {
  // Two of three arrive; the third is reported dead by another thread (as the
  // collective layer does on timeout). The barrier must complete for the
  // survivors instead of waiting for the dead rank.
  ControlBlock control(3, 60.0);  // heartbeats never go stale here
  std::vector<BarrierResult> results(2, BarrierResult::kAborted);
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      control.heartbeat(r);
      results[static_cast<std::size_t>(r)] = control.barrier(r, 7, 10.0);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  control.mark_dead(2);
  for (auto& t : threads) t.join();
  for (const BarrierResult result : results) {
    EXPECT_EQ(result, BarrierResult::kMembershipChanged);
  }
}

TEST(ControlBlock, BarrierExpelsStaleHeartbeats) {
  ControlBlock control(3, 0.05);  // 50 ms staleness window
  const std::uint64_t v0 = control.membership_version();
  control.heartbeat(2);  // rank 2 heartbeats once, then goes silent
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  // Freshen the survivors *before* spawning so neither can be expelled while
  // the other's thread is still being scheduled.
  control.heartbeat(0);
  control.heartbeat(1);
  std::vector<BarrierResult> results(2, BarrierResult::kAborted);
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      control.heartbeat(r);
      results[static_cast<std::size_t>(r)] =
          control.barrier(r, 3, 10.0, /*rewind_interrupts=*/true, v0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(control.is_alive(2));
  for (const BarrierResult result : results) {
    EXPECT_EQ(result, BarrierResult::kMembershipChanged);
  }
}

TEST(ControlBlock, BarrierTimeoutAborts) {
  // Rank 1 never arrives and never heartbeats stale (it heartbeat recently
  // with a huge window), so the barrier can only time out — which must poison
  // the run rather than deadlock it.
  ControlBlock control(2, 60.0);
  control.heartbeat(0);
  control.heartbeat(1);
  const BarrierResult result = control.barrier(0, 1, 0.1);
  EXPECT_EQ(result, BarrierResult::kAborted);
  EXPECT_TRUE(control.aborted());
  EXPECT_THROW(control.check_abort(), ApaError);
}

TEST(ControlBlock, RewindInterruptsBarrier) {
  ControlBlock control(2, 60.0);
  control.heartbeat(0);
  control.heartbeat(1);
  std::thread waiter_thread;
  BarrierResult waiter = BarrierResult::kOk;
  waiter_thread = std::thread([&] { waiter = control.barrier(0, 1, 10.0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  control.propose_rewind(1, 5);
  waiter_thread.join();
  EXPECT_EQ(waiter, BarrierResult::kRewind);
  EXPECT_TRUE(control.rewind_pending());
}

TEST(ControlBlock, TwoPhaseRewindAgreesOnMinProposal) {
  ControlBlock control(3, 60.0);
  for (int r = 0; r < 3; ++r) control.heartbeat(r);
  const std::vector<index_t> proposals = {50, 30, 40};
  std::vector<RewindDecision> decisions(3);
  std::atomic<int> decide_calls{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      control.propose_rewind(r, proposals[static_cast<std::size_t>(r)]);
      decisions[static_cast<std::size_t>(r)] =
          control.join_rewind(r, 10.0, [&](index_t min_proposed) {
            ++decide_calls;
            RewindDecision d;
            d.step = min_proposed;  // coordinator validates; here: accept
            return d;
          });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(decide_calls.load(), 1);  // only the coordinator decides
  for (const RewindDecision& d : decisions) {
    EXPECT_EQ(d.step, 30);  // min over proposals — everyone can restore it
  }
  EXPECT_FALSE(control.rewind_pending());
  EXPECT_EQ(control.rewind_rounds(), 1u);
}

TEST(ControlBlock, RewindDecideFailureAbortsEveryone) {
  ControlBlock control(2, 60.0);
  control.heartbeat(0);
  control.heartbeat(1);
  std::atomic<int> throws{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      control.propose_rewind(r, -1);
      try {
        control.join_rewind(r, 10.0, [&](index_t) -> RewindDecision {
          APA_FAIL(ErrorCode::kDiverged, "no consistent checkpoint");
        });
      } catch (const ApaError&) {
        ++throws;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(throws.load(), 2);
  EXPECT_TRUE(control.aborted());
}

TEST(ControlBlock, AbortWakesBarrierWaiters) {
  ControlBlock control(2, 60.0);
  control.heartbeat(0);
  control.heartbeat(1);
  BarrierResult result = BarrierResult::kOk;
  std::thread waiter([&] { result = control.barrier(0, 1, 10.0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  control.abort(ErrorCode::kDiverged, "test abort");
  waiter.join();
  EXPECT_EQ(result, BarrierResult::kAborted);
}

}  // namespace
}  // namespace apa::dist
