#include "dist/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "nn/mlp.h"
#include "support/check.h"
#include "support/rng.h"

namespace apa::dist {
namespace {

namespace fs = std::filesystem;

nn::Mlp make_model(std::uint64_t seed) {
  nn::MlpConfig config;
  config.layer_sizes = {12, 16, 5};
  config.momentum = 0.9f;  // exercise the SgdState round trip too
  config.seed = seed;
  return {config, nn::MatmulBackend("classical"), nn::MatmulBackend("classical")};
}

void nudge(nn::Mlp& model) {
  Rng rng(3);
  Matrix<float> x(8, 12);
  fill_random_uniform<float>(x.view(), rng);
  const std::vector<int> labels = {0, 1, 2, 3, 4, 0, 1, 2};
  for (int i = 0; i < 3; ++i) model.train_step(x.view().as_const(), labels);
}

void write_full_checkpoint(const std::string& dir, index_t step,
                           const nn::Mlp& model, int num_shards) {
  std::vector<ShardInfo> shards;
  for (int k = 0; k < num_shards; ++k) {
    shards.push_back(write_checkpoint_shard(dir, step, k, num_shards, model));
  }
  write_checkpoint_manifest(dir, step, shards, model_checksum(model));
}

class ShardedCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("apamm_dist_ckpt_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir_;
};

TEST_F(ShardedCheckpointTest, RoundTripIsBitExact) {
  nn::Mlp original = make_model(1);
  nudge(original);
  write_full_checkpoint(dir_, 5, original, 3);

  const ManifestInfo manifest = validate_checkpoint_dir(dir_, 5);
  EXPECT_EQ(manifest.step, 5);
  EXPECT_EQ(manifest.num_shards, 3);
  EXPECT_EQ(manifest.model_checksum, model_checksum(original));

  nn::Mlp restored = make_model(999);  // different init, fully overwritten
  load_sharded_checkpoint(dir_, 5, restored);
  EXPECT_EQ(model_checksum(restored), model_checksum(original));
}

TEST_F(ShardedCheckpointTest, SingleShardDegenerateCase) {
  nn::Mlp original = make_model(1);
  nudge(original);
  write_full_checkpoint(dir_, 0, original, 1);
  nn::Mlp restored = make_model(2);
  load_sharded_checkpoint(dir_, 0, restored);
  EXPECT_EQ(model_checksum(restored), model_checksum(original));
}

TEST_F(ShardedCheckpointTest, MomentumStateSurvives) {
  nn::Mlp original = make_model(1);
  nudge(original);
  write_full_checkpoint(dir_, 0, original, 2);
  nn::Mlp restored = make_model(999);
  load_sharded_checkpoint(dir_, 0, restored);
  // One identical step on both must stay bit-identical — only true when the
  // momentum buffers were restored too.
  nudge(original);
  nudge(restored);
  EXPECT_EQ(model_checksum(restored), model_checksum(original));
}

TEST_F(ShardedCheckpointTest, MissingManifestMeansStepNeverExisted) {
  nn::Mlp model = make_model(1);
  // Shards committed but the coordinator crashed before the manifest: the
  // step must be invisible, not torn.
  for (int k = 0; k < 2; ++k) write_checkpoint_shard(dir_, 3, k, 2, model);
  EXPECT_THROW(validate_checkpoint_dir(dir_, 3), ApaError);
  EXPECT_EQ(find_latest_consistent_step(dir_, 100), -1);
}

TEST_F(ShardedCheckpointTest, BitFlipInAnyShardIsDetected) {
  nn::Mlp model = make_model(1);
  for (int victim = 0; victim < 3; ++victim) {
    const std::string dir = dir_ + "_v" + std::to_string(victim);
    write_full_checkpoint(dir, 7, model, 3);
    corrupt_shard_byte(dir, 7, victim);
    try {
      validate_checkpoint_dir(dir, 7);
      FAIL() << "shard " << victim << " corruption not detected";
    } catch (const ApaError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCorruptCheckpoint);
    }
    fs::remove_all(dir);
  }
}

TEST_F(ShardedCheckpointTest, TruncatedShardIsDetected) {
  nn::Mlp model = make_model(1);
  write_full_checkpoint(dir_, 2, model, 2);
  const fs::path shard = fs::path(step_dir_path(dir_, 2)) / "shard_1.bin";
  fs::resize_file(shard, fs::file_size(shard) / 2);
  EXPECT_THROW(validate_checkpoint_dir(dir_, 2), ApaError);
}

TEST_F(ShardedCheckpointTest, CorruptManifestIsDetected) {
  nn::Mlp model = make_model(1);
  write_full_checkpoint(dir_, 2, model, 2);
  const fs::path manifest = fs::path(step_dir_path(dir_, 2)) / "MANIFEST";
  {
    std::fstream f(manifest, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(manifest) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(static_cast<std::streamoff>(fs::file_size(manifest) / 2));
    byte = static_cast<char>(byte ^ 0x01);
    f.write(&byte, 1);
  }
  EXPECT_THROW(validate_checkpoint_dir(dir_, 2), ApaError);
}

TEST_F(ShardedCheckpointTest, TruncatedManifestIsDetected) {
  nn::Mlp model = make_model(1);
  write_full_checkpoint(dir_, 2, model, 2);
  const fs::path manifest = fs::path(step_dir_path(dir_, 2)) / "MANIFEST";
  fs::resize_file(manifest, fs::file_size(manifest) - 9);
  EXPECT_THROW(validate_checkpoint_dir(dir_, 2), ApaError);
}

TEST_F(ShardedCheckpointTest, FallsBackToPreviousConsistentStep) {
  nn::Mlp model = make_model(1);
  nudge(model);
  write_full_checkpoint(dir_, 0, model, 2);
  nudge(model);
  write_full_checkpoint(dir_, 10, model, 2);
  EXPECT_EQ(find_latest_consistent_step(dir_, 100), 10);
  corrupt_shard_byte(dir_, 10, 0);
  // Newest step is rotten: the search must fall back, not fail.
  EXPECT_EQ(find_latest_consistent_step(dir_, 100), 0);
  nn::Mlp restored = make_model(999);
  load_sharded_checkpoint(dir_, 0, restored);
  EXPECT_THROW(load_sharded_checkpoint(dir_, 10, restored), ApaError);
}

TEST_F(ShardedCheckpointTest, AtMostBoundsTheSearch) {
  nn::Mlp model = make_model(1);
  write_full_checkpoint(dir_, 0, model, 2);
  write_full_checkpoint(dir_, 10, model, 2);
  write_full_checkpoint(dir_, 20, model, 2);
  EXPECT_EQ(find_latest_consistent_step(dir_, 15), 10);
  EXPECT_EQ(find_latest_consistent_step(dir_, 10), 10);
  EXPECT_EQ(find_latest_consistent_step(dir_, 9), 0);
  EXPECT_EQ(find_latest_consistent_step(dir_, -1), -1);
}

TEST_F(ShardedCheckpointTest, ListAndPrune) {
  nn::Mlp model = make_model(1);
  for (const index_t step : {0, 10, 20, 30}) {
    write_full_checkpoint(dir_, step, model, 2);
  }
  EXPECT_EQ(list_checkpoint_steps(dir_),
            (std::vector<index_t>{0, 10, 20, 30}));
  prune_checkpoints(dir_, 2);
  EXPECT_EQ(list_checkpoint_steps(dir_), (std::vector<index_t>{20, 30}));
  // Pruning must not break the survivors.
  EXPECT_EQ(find_latest_consistent_step(dir_, 100), 30);
}

TEST_F(ShardedCheckpointTest, ShardCountMismatchRejected) {
  nn::Mlp model = make_model(1);
  // Manifest says 2 shards but shard files were written for a 3-way split:
  // shard 0's header disagrees with the manifest.
  std::vector<ShardInfo> shards;
  shards.push_back(write_checkpoint_shard(dir_, 4, 0, 3, model));
  shards.push_back(write_checkpoint_shard(dir_, 4, 1, 3, model));
  write_checkpoint_manifest(dir_, 4, shards, model_checksum(model));
  nn::Mlp restored = make_model(2);
  EXPECT_THROW(load_sharded_checkpoint(dir_, 4, restored), ApaError);
}

TEST_F(ShardedCheckpointTest, FailedLoadLeavesModelUntouched) {
  nn::Mlp model = make_model(1);
  nudge(model);
  write_full_checkpoint(dir_, 6, model, 2);
  corrupt_shard_byte(dir_, 6, 1);
  nn::Mlp victim = make_model(999);
  const std::uint64_t before = model_checksum(victim);
  EXPECT_THROW(load_sharded_checkpoint(dir_, 6, victim), ApaError);
  EXPECT_EQ(model_checksum(victim), before);
}

}  // namespace
}  // namespace apa::dist
