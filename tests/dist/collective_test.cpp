#include "dist/collective.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "dist/control.h"
#include "dist/transport.h"

namespace apa::dist {
namespace {

/// Runs allreduce_mean on `workers` threads; rank r contributes
/// data[i] = r + i. Returns per-rank (status, result) pairs.
struct RingRun {
  std::vector<CollectiveStatus> status;
  std::vector<std::vector<float>> data;
};

RingRun run_ring(int workers, index_t elements, const DistFaultPolicy& faults,
                 const CollectiveOptions& options = {},
                 const std::vector<int>& absent = {}) {
  FaultState state;
  LocalTransport transport(workers, faults, &state);
  ControlBlock control(workers, 0.5);
  RingRun run;
  run.status.assign(static_cast<std::size_t>(workers),
                    CollectiveStatus::kAborted);
  run.data.assign(static_cast<std::size_t>(workers), {});
  std::vector<std::thread> threads;
  for (int r = 0; r < workers; ++r) {
    if (std::find(absent.begin(), absent.end(), r) != absent.end()) continue;
    threads.emplace_back([&, r] {
      auto& data = run.data[static_cast<std::size_t>(r)];
      data.resize(static_cast<std::size_t>(elements));
      for (index_t i = 0; i < elements; ++i) {
        data[static_cast<std::size_t>(i)] = static_cast<float>(r + i);
      }
      RingReducer reducer(r, &transport, &control, options,
                          /*retry_seed=*/static_cast<std::uint64_t>(r) + 1);
      control.heartbeat(r);
      CollectiveStatus status = reducer.allreduce_mean(data, /*step=*/0);
      while (status == CollectiveStatus::kPeerFailure) {
        // Re-form the ring over the survivors with the original contribution.
        for (index_t i = 0; i < elements; ++i) {
          data[static_cast<std::size_t>(i)] = static_cast<float>(r + i);
        }
        status = reducer.allreduce_mean(data, 0);
      }
      run.status[static_cast<std::size_t>(r)] = status;
    });
  }
  for (auto& t : threads) t.join();
  return run;
}

void expect_mean_of_ranks(const std::vector<float>& data,
                          const std::vector<int>& ranks, index_t elements) {
  ASSERT_EQ(data.size(), static_cast<std::size_t>(elements));
  for (index_t i = 0; i < elements; ++i) {
    float sum = 0;
    for (const int r : ranks) sum += static_cast<float>(r + i);
    EXPECT_FLOAT_EQ(data[static_cast<std::size_t>(i)],
                    sum / static_cast<float>(ranks.size()))
        << "element " << i;
  }
}

TEST(RingReducer, ComputesTheMeanAcrossRanks) {
  for (const int workers : {2, 3, 5}) {
    const RingRun run = run_ring(workers, 13, DistFaultPolicy{});
    std::vector<int> all;
    for (int r = 0; r < workers; ++r) all.push_back(r);
    for (int r = 0; r < workers; ++r) {
      ASSERT_EQ(run.status[static_cast<std::size_t>(r)], CollectiveStatus::kOk)
          << "rank " << r << " of " << workers;
      expect_mean_of_ranks(run.data[static_cast<std::size_t>(r)], all, 13);
    }
  }
}

TEST(RingReducer, ResultsAreBitIdenticalAcrossRanks) {
  const RingRun run = run_ring(4, 257, DistFaultPolicy{});
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(run.data[static_cast<std::size_t>(r)], run.data[0])
        << "rank " << r;
  }
}

TEST(RingReducer, ElementsSmallerThanRingStillReduce) {
  // 2 elements across 3 ranks: one chunk is empty.
  const RingRun run = run_ring(3, 2, DistFaultPolicy{});
  for (int r = 0; r < 3; ++r) {
    ASSERT_EQ(run.status[static_cast<std::size_t>(r)], CollectiveStatus::kOk);
    expect_mean_of_ranks(run.data[static_cast<std::size_t>(r)], {0, 1, 2}, 2);
  }
}

TEST(RingReducer, SingleRankIsIdentity) {
  const RingRun run = run_ring(1, 5, DistFaultPolicy{});
  ASSERT_EQ(run.status[0], CollectiveStatus::kOk);
  expect_mean_of_ranks(run.data[0], {0}, 5);
}

TEST(RingReducer, RepairsDroppedMessages) {
  CollectiveOptions options;
  options.hop_timeout_s = 0.05;
  const RingRun run =
      run_ring(3, 31, DistFaultPolicy::parse("drop@1:2"), options);
  for (int r = 0; r < 3; ++r) {
    ASSERT_EQ(run.status[static_cast<std::size_t>(r)], CollectiveStatus::kOk);
    expect_mean_of_ranks(run.data[static_cast<std::size_t>(r)], {0, 1, 2}, 31);
  }
}

TEST(RingReducer, RepairsCorruptedMessages) {
  const RingRun run = run_ring(3, 31, DistFaultPolicy::parse("corrupt-msg@0:2"));
  for (int r = 0; r < 3; ++r) {
    ASSERT_EQ(run.status[static_cast<std::size_t>(r)], CollectiveStatus::kOk);
    expect_mean_of_ranks(run.data[static_cast<std::size_t>(r)], {0, 1, 2}, 31);
  }
}

TEST(RingReducer, SurvivesDelayedSender) {
  CollectiveOptions options;
  options.hop_timeout_s = 0.05;
  const RingRun run =
      run_ring(3, 8, DistFaultPolicy::parse("delay@1:0:120"), options);
  for (int r = 0; r < 3; ++r) {
    ASSERT_EQ(run.status[static_cast<std::size_t>(r)], CollectiveStatus::kOk);
    expect_mean_of_ranks(run.data[static_cast<std::size_t>(r)], {0, 1, 2}, 8);
  }
}

TEST(RingReducer, DegradesAroundAnAbsentPeer) {
  // Rank 2 never joins the collective (simulated crash before step 0). The
  // survivors must detect the silence, expel it, re-form a 2-ring, and reduce
  // over {0, 1}.
  CollectiveOptions options;
  options.hop_timeout_s = 0.05;
  options.retry.max_attempts = 3;
  options.retry.base_delay_s = 0.01;
  options.retry.max_delay_s = 0.05;
  const RingRun run = run_ring(3, 9, DistFaultPolicy{}, options,
                               /*absent=*/{2});
  for (const int r : {0, 1}) {
    ASSERT_EQ(run.status[static_cast<std::size_t>(r)], CollectiveStatus::kOk)
        << "rank " << r;
    expect_mean_of_ranks(run.data[static_cast<std::size_t>(r)], {0, 1}, 9);
  }
}

}  // namespace
}  // namespace apa::dist
