#include "dist/fault.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace apa::dist {
namespace {

TEST(DistFaultPolicy, EmptySpecArmsNothing) {
  const DistFaultPolicy policy = DistFaultPolicy::parse("");
  EXPECT_FALSE(policy.any());
}

TEST(DistFaultPolicy, ParsesEveryClause) {
  const DistFaultPolicy policy = DistFaultPolicy::parse(
      "kill@1:7,corrupt@0:3,corrupt-shard@2:5,corrupt-msg@1:4,drop@0:2,"
      "delay@3:9:250");
  EXPECT_TRUE(policy.any());
  EXPECT_TRUE(policy.kills(1, 7));
  EXPECT_FALSE(policy.kills(1, 8));
  EXPECT_FALSE(policy.kills(0, 7));
  EXPECT_TRUE(policy.corrupts_grad(0, 3));
  EXPECT_TRUE(policy.corrupts_shard(2, 5));
  EXPECT_EQ(policy.corrupt_msg_rank, 1);
  EXPECT_EQ(policy.corrupt_msg_count, 4);
  EXPECT_EQ(policy.drop_rank, 0);
  EXPECT_EQ(policy.drop_count, 2);
  EXPECT_TRUE(policy.delays(3, 9));
  EXPECT_DOUBLE_EQ(policy.delay_s, 0.25);
}

TEST(DistFaultPolicy, WhitespaceTolerated) {
  const DistFaultPolicy policy = DistFaultPolicy::parse(" kill@0:1 , drop@1:3 ");
  EXPECT_TRUE(policy.kills(0, 1));
  EXPECT_EQ(policy.drop_count, 3);
}

TEST(DistFaultPolicy, MalformedSpecsRejected) {
  EXPECT_THROW(DistFaultPolicy::parse("kill@"), ApaError);
  EXPECT_THROW(DistFaultPolicy::parse("kill@1"), ApaError);
  EXPECT_THROW(DistFaultPolicy::parse("kill@x:2"), ApaError);
  EXPECT_THROW(DistFaultPolicy::parse("explode@0:1"), ApaError);
  EXPECT_THROW(DistFaultPolicy::parse("delay@0:1"), ApaError);
}

TEST(DistFaultPolicy, TrailingCommaIgnored) {
  EXPECT_TRUE(DistFaultPolicy::parse("kill@0:1,").kills(0, 1));
}

TEST(DistFaultPolicy, MalformedSpecReportsPrecondition) {
  try {
    DistFaultPolicy::parse("bogus@0:0");
    FAIL() << "expected ApaError";
  } catch (const ApaError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPrecondition);
  }
}

}  // namespace
}  // namespace apa::dist
