#include "dist/trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <functional>

#include "data/synthetic_mnist.h"
#include "dist/checkpoint.h"
#include "support/check.h"

namespace apa::dist {
namespace {

namespace fs = std::filesystem;

data::Dataset small_train_set() {
  data::SyntheticMnistOptions options;
  options.train_size = 512;
  options.test_size = 1;
  options.seed = 99;
  return data::make_synthetic_mnist(options).train;
}

std::function<nn::Mlp()> model_factory() {
  return [] {
    nn::MlpConfig config;
    config.layer_sizes = {data::kImagePixels, 32, data::kNumClasses};
    config.learning_rate = 0.05f;
    config.seed = 7;
    return nn::Mlp(config, nn::MatmulBackend("classical"),
                   nn::MatmulBackend("classical"));
  };
}

class DistTrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("apamm_dist_train_" + std::string(::testing::UnitTest::GetInstance()
                                                   ->current_test_info()
                                                   ->name())))
               .string();
    fs::remove_all(dir_);
    options_.checkpoint_dir = dir_;
    options_.workers = 2;
    options_.batch = 16;
    options_.steps = 12;
    options_.checkpoint_every = 4;
    options_.warmup_steps = 2;
    options_.barrier_timeout_s = 20.0;
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
  DistTrainOptions options_;
};

TEST_F(DistTrainerTest, FaultFreeEpochKeepsReplicasBitIdentical) {
  const DistEpochStats stats =
      train_data_parallel(model_factory(), small_train_set(), options_);
  EXPECT_EQ(stats.steps, 12);
  EXPECT_EQ(stats.initial_workers, 2);
  EXPECT_EQ(stats.final_workers, 2);
  EXPECT_EQ(stats.worker_deaths, 0);
  EXPECT_EQ(stats.rollbacks, 0);
  EXPECT_TRUE(stats.replicas_bit_identical);
  EXPECT_FALSE(stats.degraded_to_single);
  EXPECT_TRUE(std::isfinite(stats.mean_loss));
  EXPECT_GT(stats.checkpoints_written, 0);
  EXPECT_EQ(stats.final_checkpoint_step, 12);

  // The committed final state must load and match the in-memory fingerprint.
  nn::Mlp reloaded = model_factory()();
  load_sharded_checkpoint(dir_, stats.final_checkpoint_step, reloaded);
  EXPECT_EQ(model_checksum(reloaded), stats.final_checksum);
}

TEST_F(DistTrainerTest, DistributedRunMatchesLossBallpark) {
  // The 2-worker mean loss should land in the same ballpark as a single
  // process run over the same data (not bit-equal: different batch layout).
  const DistEpochStats multi =
      train_data_parallel(model_factory(), small_train_set(), options_);
  DistTrainOptions solo = options_;
  solo.workers = 1;
  solo.checkpoint_dir = dir_ + "_solo";
  const DistEpochStats single =
      train_data_parallel(model_factory(), small_train_set(), solo);
  fs::remove_all(solo.checkpoint_dir);
  EXPECT_TRUE(std::isfinite(multi.mean_loss));
  EXPECT_TRUE(std::isfinite(single.mean_loss));
  EXPECT_NEAR(multi.mean_loss, single.mean_loss,
              0.5 * std::max(multi.mean_loss, single.mean_loss));
}

TEST_F(DistTrainerTest, KilledWorkerDegradesToSurvivors) {
  options_.workers = 3;
  options_.faults = DistFaultPolicy::parse("kill@2:5");
  options_.collective.hop_timeout_s = 0.1;
  options_.collective.retry.max_attempts = 4;
  options_.heartbeat_timeout_s = 0.5;
  const DistEpochStats stats =
      train_data_parallel(model_factory(), small_train_set(), options_);
  EXPECT_EQ(stats.faults_killed, 1);
  EXPECT_EQ(stats.final_workers, 2);
  EXPECT_EQ(stats.worker_deaths, 1);
  EXPECT_EQ(stats.steps, 12);  // survivors finish the epoch
  EXPECT_TRUE(stats.replicas_bit_identical);
  EXPECT_EQ(stats.final_checkpoint_step, 12);
  nn::Mlp reloaded = model_factory()();
  load_sharded_checkpoint(dir_, 12, reloaded);
  EXPECT_EQ(model_checksum(reloaded), stats.final_checksum);
}

TEST_F(DistTrainerTest, DegradationLadderReachesSingleWorker) {
  options_.workers = 2;
  options_.faults = DistFaultPolicy::parse("kill@1:3");
  options_.collective.hop_timeout_s = 0.1;
  options_.collective.retry.max_attempts = 4;
  const DistEpochStats stats =
      train_data_parallel(model_factory(), small_train_set(), options_);
  EXPECT_EQ(stats.final_workers, 1);
  EXPECT_TRUE(stats.degraded_to_single);
  EXPECT_EQ(stats.steps, 12);
  EXPECT_TRUE(std::isfinite(stats.mean_loss));
}

TEST_F(DistTrainerTest, CorruptGradientTriggersBitExactRollback) {
  options_.faults = DistFaultPolicy::parse("corrupt@1:6");
  const DistEpochStats stats =
      train_data_parallel(model_factory(), small_train_set(), options_);
  EXPECT_EQ(stats.faults_grad_corrupted, 1);
  EXPECT_GE(stats.rollbacks, 1);
  EXPECT_TRUE(stats.rollbacks_bit_exact);
  EXPECT_TRUE(stats.replicas_bit_identical);
  // Replay counts too: at least the nominal 12 applied updates happened.
  EXPECT_GE(stats.steps, 12);
  EXPECT_TRUE(std::isfinite(stats.mean_loss));
}

TEST_F(DistTrainerTest, RollbackRecoveryMatchesFaultFreeResult) {
  // Determinism end to end: a corrupted step that is rolled back and replayed
  // must land on the exact same final parameters as the run with no fault
  // (the corrupt contribution never survives into an applied update, and the
  // classical backend means no de-risk rung changes the replay bytes).
  const DistEpochStats clean =
      train_data_parallel(model_factory(), small_train_set(), options_);
  DistTrainOptions faulty = options_;
  faulty.checkpoint_dir = dir_ + "_faulty";
  faulty.faults = DistFaultPolicy::parse("corrupt@0:5");
  const DistEpochStats recovered =
      train_data_parallel(model_factory(), small_train_set(), faulty);
  fs::remove_all(faulty.checkpoint_dir);
  EXPECT_GE(recovered.rollbacks, 1);
  EXPECT_EQ(recovered.final_checksum, clean.final_checksum);
}

TEST_F(DistTrainerTest, CorruptShardForcesFallbackToOlderStep) {
  // Shard written at step 4 rots after commit; the divergence at step 6 must
  // fall back to the step-0 checkpoint instead of loading the rotten one.
  options_.faults = DistFaultPolicy::parse("corrupt-shard@0:4,corrupt@1:6");
  const DistEpochStats stats =
      train_data_parallel(model_factory(), small_train_set(), options_);
  EXPECT_EQ(stats.faults_shard_corrupted, 1);
  EXPECT_GE(stats.rollbacks, 1);
  EXPECT_GE(stats.checkpoint_fallbacks, 1);
  EXPECT_TRUE(stats.rollbacks_bit_exact);
  EXPECT_GE(stats.steps, 12);
}

TEST_F(DistTrainerTest, CombinedKillAndCorruptDrill) {
  // The ISSUE acceptance drill: kill one worker AND corrupt one gradient in
  // the same epoch. Expect detection, a distributed-consistent bit-exact
  // rollback, degradation to the survivors, and a final accuracy-bearing
  // model in the same ballpark as the fault-free run.
  options_.workers = 3;
  options_.faults = DistFaultPolicy::parse("kill@2:4,corrupt@1:7");
  options_.collective.hop_timeout_s = 0.1;
  options_.collective.retry.max_attempts = 4;
  options_.heartbeat_timeout_s = 0.5;
  const DistEpochStats stats =
      train_data_parallel(model_factory(), small_train_set(), options_);
  EXPECT_EQ(stats.faults_killed, 1);
  EXPECT_EQ(stats.faults_grad_corrupted, 1);
  EXPECT_EQ(stats.final_workers, 2);
  EXPECT_GE(stats.rollbacks, 1);
  EXPECT_TRUE(stats.rollbacks_bit_exact);
  EXPECT_TRUE(stats.replicas_bit_identical);
  EXPECT_GE(stats.steps, 12);
  EXPECT_TRUE(std::isfinite(stats.mean_loss));

  const DistEpochStats clean =
      train_data_parallel(model_factory(), small_train_set(),
                          [&] {
                            DistTrainOptions c = options_;
                            c.checkpoint_dir = dir_ + "_clean";
                            c.faults = DistFaultPolicy{};
                            return c;
                          }());
  fs::remove_all(dir_ + "_clean");
  EXPECT_NEAR(stats.mean_loss, clean.mean_loss,
              0.5 * std::max(stats.mean_loss, clean.mean_loss));
}

TEST_F(DistTrainerTest, RollbackBudgetExhaustionAborts) {
  // An unconditional NaN source cannot be outrun by rollbacks: after
  // max_rollbacks rounds the run must abort with kDiverged, not hang.
  options_.max_rollbacks = 0;
  options_.faults = DistFaultPolicy::parse("corrupt@0:3");
  try {
    train_data_parallel(model_factory(), small_train_set(), options_);
    FAIL() << "expected ApaError";
  } catch (const ApaError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDiverged);
  }
}

TEST_F(DistTrainerTest, DroppedMessagesAreRepairedInline) {
  options_.faults = DistFaultPolicy::parse("drop@0:3");
  options_.collective.hop_timeout_s = 0.05;
  const DistEpochStats stats =
      train_data_parallel(model_factory(), small_train_set(), options_);
  EXPECT_EQ(stats.messages_dropped, 3);
  EXPECT_GT(stats.resends_served, 0);
  EXPECT_EQ(stats.steps, 12);
  EXPECT_EQ(stats.worker_deaths, 0);  // repair, not degradation
  EXPECT_TRUE(stats.replicas_bit_identical);
}

TEST_F(DistTrainerTest, CorruptedMessagesAreRepairedInline) {
  options_.faults = DistFaultPolicy::parse("corrupt-msg@1:2");
  const DistEpochStats stats =
      train_data_parallel(model_factory(), small_train_set(), options_);
  EXPECT_EQ(stats.messages_corrupted, 2);
  EXPECT_GT(stats.checksum_failures, 0);
  EXPECT_EQ(stats.steps, 12);
  EXPECT_EQ(stats.worker_deaths, 0);
  EXPECT_TRUE(stats.replicas_bit_identical);
}

TEST_F(DistTrainerTest, RejectsBadOptions) {
  const auto run = [&](DistTrainOptions options) {
    return train_data_parallel(model_factory(), small_train_set(), options);
  };
  DistTrainOptions no_dir = options_;
  no_dir.checkpoint_dir.clear();
  EXPECT_THROW(run(no_dir), ApaError);
  DistTrainOptions no_workers = options_;
  no_workers.workers = 0;
  EXPECT_THROW(run(no_workers), ApaError);
}

TEST_F(DistTrainerTest, SingleWorkerPathIsPlainSgd) {
  options_.workers = 1;
  const DistEpochStats stats =
      train_data_parallel(model_factory(), small_train_set(), options_);
  EXPECT_EQ(stats.steps, 12);
  EXPECT_EQ(stats.final_workers, 1);
  EXPECT_TRUE(std::isfinite(stats.mean_loss));
  EXPECT_EQ(stats.resend_requests, 0);  // no collectives at n == 1
}

}  // namespace
}  // namespace apa::dist
