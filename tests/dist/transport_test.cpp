#include "dist/transport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace apa::dist {
namespace {

Message make_chunk(int from, int to, std::uint64_t step, std::uint32_t phase) {
  Message msg;
  msg.kind = MsgKind::kChunk;
  msg.from = from;
  msg.to = to;
  msg.step = step;
  msg.phase = phase;
  msg.payload = {1.0f, 2.0f, 3.0f};
  return msg;
}

TEST(MessageChecksum, DetectsPayloadCorruption) {
  Message msg = make_chunk(0, 1, 3, 2);
  msg.checksum = msg.compute_checksum();
  EXPECT_TRUE(msg.checksum_ok());
  msg.payload[1] = 2.5f;
  EXPECT_FALSE(msg.checksum_ok());
}

TEST(MessageChecksum, CoversHeaderFields) {
  Message a = make_chunk(0, 1, 3, 2);
  Message b = make_chunk(0, 1, 4, 2);  // different step, same payload
  EXPECT_NE(a.compute_checksum(), b.compute_checksum());
  Message c = make_chunk(0, 1, 3, 5);  // different phase
  EXPECT_NE(a.compute_checksum(), c.compute_checksum());
}

TEST(Mailbox, DeliversInOrder) {
  Mailbox box;
  box.push(make_chunk(0, 1, 1, 0));
  box.push(make_chunk(0, 1, 1, 1));
  EXPECT_EQ(box.size(), 2u);
  auto first = box.pop(0.1);
  auto second = box.pop(0.1);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->phase, 0u);
  EXPECT_EQ(second->phase, 1u);
}

TEST(Mailbox, PopTimesOutEmpty) {
  Mailbox box;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.pop(0.05).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(40));
}

TEST(Mailbox, InterruptUnblocksPop) {
  Mailbox box;
  std::atomic<bool> flag{false};
  std::thread flipper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    flag.store(true);
  });
  const auto got = box.pop(5.0, [&] { return flag.load(); });
  flipper.join();
  EXPECT_FALSE(got.has_value());
}

TEST(Mailbox, WakesOnCrossThreadPush) {
  Mailbox box;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.push(make_chunk(0, 1, 9, 0));
  });
  const auto got = box.pop(5.0);
  producer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->step, 9u);
}

TEST(LocalTransport, StampsChecksumOnSend) {
  FaultState state;
  LocalTransport transport(2, DistFaultPolicy{}, &state);
  transport.send(make_chunk(0, 1, 1, 0));
  const auto got = transport.mailbox(1).pop(0.5);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->checksum_ok());
}

TEST(LocalTransport, DropFaultSwallowsFirstNChunks) {
  FaultState state;
  LocalTransport transport(2, DistFaultPolicy::parse("drop@0:2"), &state);
  for (std::uint32_t phase = 0; phase < 3; ++phase) {
    transport.send(make_chunk(0, 1, 1, phase));
  }
  const auto got = transport.mailbox(1).pop(0.5);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->phase, 2u);  // the two earlier sends were dropped
  EXPECT_EQ(transport.mailbox(1).size(), 0u);
  EXPECT_EQ(state.messages_dropped.load(), 2);
}

TEST(LocalTransport, DropFaultOnlyHitsTheConfiguredRank) {
  FaultState state;
  LocalTransport transport(2, DistFaultPolicy::parse("drop@0:5"), &state);
  transport.send(make_chunk(1, 0, 1, 0));
  EXPECT_TRUE(transport.mailbox(0).pop(0.5).has_value());
}

TEST(LocalTransport, CorruptMsgFaultTripsReceiverChecksum) {
  FaultState state;
  LocalTransport transport(2, DistFaultPolicy::parse("corrupt-msg@0:1"), &state);
  transport.send(make_chunk(0, 1, 1, 0));
  transport.send(make_chunk(0, 1, 1, 1));
  const auto corrupted = transport.mailbox(1).pop(0.5);
  const auto clean = transport.mailbox(1).pop(0.5);
  ASSERT_TRUE(corrupted && clean);
  EXPECT_FALSE(corrupted->checksum_ok());
  EXPECT_TRUE(clean->checksum_ok());
  EXPECT_EQ(state.messages_corrupted.load(), 1);
}

TEST(LocalTransport, ResendControlMessagesAreExemptFromFaults) {
  // If the repair path itself could be injected away the protocol could not
  // make progress; faults only apply to data chunks.
  FaultState state;
  LocalTransport transport(2, DistFaultPolicy::parse("drop@0:10,corrupt-msg@0:10"),
                           &state);
  Message request;
  request.kind = MsgKind::kResend;
  request.from = 0;
  request.to = 1;
  request.step = 1;
  request.phase = 0;
  transport.send(std::move(request));
  const auto got = transport.mailbox(1).pop(0.5);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->kind, MsgKind::kResend);
  EXPECT_TRUE(got->checksum_ok());
}

TEST(Mailbox, ClearDiscardsQueued) {
  Mailbox box;
  box.push(make_chunk(0, 1, 1, 0));
  box.clear();
  EXPECT_EQ(box.size(), 0u);
}

}  // namespace
}  // namespace apa::dist
