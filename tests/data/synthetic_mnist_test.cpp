#include "data/synthetic_mnist.h"

#include <gtest/gtest.h>

#include <set>

namespace apa::data {
namespace {

SyntheticMnistOptions tiny() {
  SyntheticMnistOptions o;
  o.train_size = 500;
  o.test_size = 100;
  return o;
}

TEST(RenderDigit, CanvasInUnitRangeAndNonEmpty) {
  Matrix<float> canvas(kImageSide, kImageSide);
  for (int digit = 0; digit < kNumClasses; ++digit) {
    render_digit(digit, canvas.view());
    double mass = 0;
    for (float v : canvas.span()) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
      mass += v;
    }
    EXPECT_GT(mass, 20.0) << "digit " << digit << " glyph too sparse";
  }
}

TEST(RenderDigit, DigitsAreDistinct) {
  Matrix<float> a(kImageSide, kImageSide), b(kImageSide, kImageSide);
  for (int i = 0; i < kNumClasses; ++i) {
    for (int j = i + 1; j < kNumClasses; ++j) {
      render_digit(i, a.view());
      render_digit(j, b.view());
      EXPECT_GT(max_abs_diff(a.view(), b.view()), 0.5)
          << "digits " << i << " and " << j << " render identically";
    }
  }
}

TEST(RenderDigit, EightIsSupersetOfZero) {
  // Sanity on the seven-segment table: 8 lights every segment of 0.
  Matrix<float> zero(kImageSide, kImageSide), eight(kImageSide, kImageSide);
  render_digit(0, zero.view());
  render_digit(8, eight.view());
  for (index_t i = 0; i < kImageSide; ++i) {
    for (index_t j = 0; j < kImageSide; ++j) {
      if (zero(i, j) > 0) EXPECT_GT(eight(i, j), 0.0f);
    }
  }
}

TEST(RenderDigit, InvalidDigitThrows) {
  Matrix<float> canvas(kImageSide, kImageSide);
  EXPECT_THROW(render_digit(10, canvas.view()), std::logic_error);
  EXPECT_THROW(render_digit(-1, canvas.view()), std::logic_error);
}

TEST(SyntheticMnist, ShapesAndRanges) {
  const auto splits = make_synthetic_mnist(tiny());
  EXPECT_EQ(splits.train.size(), 500);
  EXPECT_EQ(splits.test.size(), 100);
  EXPECT_EQ(splits.train.features(), kImagePixels);
  for (float v : splits.train.images.span()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SyntheticMnist, AllClassesPresent) {
  const auto splits = make_synthetic_mnist(tiny());
  std::set<int> seen(splits.train.labels.begin(), splits.train.labels.end());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumClasses));
  for (int label : splits.train.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, kNumClasses);
  }
}

TEST(SyntheticMnist, DeterministicForSeed) {
  const auto a = make_synthetic_mnist(tiny());
  const auto b = make_synthetic_mnist(tiny());
  EXPECT_EQ(a.train.labels, b.train.labels);
  EXPECT_EQ(max_abs_diff(a.train.images.view(), b.train.images.view()), 0.0);
}

TEST(SyntheticMnist, DifferentSeedsDiffer) {
  auto opts = tiny();
  const auto a = make_synthetic_mnist(opts);
  opts.seed = 999;
  const auto b = make_synthetic_mnist(opts);
  EXPECT_GT(max_abs_diff(a.train.images.view(), b.train.images.view()), 0.1);
}

TEST(SyntheticMnist, SamplesOfSameClassVary) {
  auto opts = tiny();
  opts.train_size = 2000;
  const auto splits = make_synthetic_mnist(opts);
  // Find two samples of digit 3 and check jitter/noise made them differ.
  index_t first = -1, second = -1;
  for (index_t i = 0; i < splits.train.size(); ++i) {
    if (splits.train.labels[static_cast<std::size_t>(i)] == 3) {
      if (first < 0) {
        first = i;
      } else {
        second = i;
        break;
      }
    }
  }
  ASSERT_GE(second, 0);
  EXPECT_GT(max_abs_diff(
                splits.train.images.view().block(first, 0, 1, kImagePixels),
                splits.train.images.view().block(second, 0, 1, kImagePixels)),
            0.05);
}

TEST(Dataset, ShuffleKeepsImageLabelPairsTogether) {
  auto splits = make_synthetic_mnist(tiny());
  // Tag: digit glyphs are distinguishable, so verify a sample still matches
  // its label's clean glyph better than any other after shuffling.
  Rng rng(77);
  const auto before_labels = splits.train.labels;
  shuffle(splits.train, rng);
  // Same multiset of labels.
  auto sorted_before = before_labels;
  auto sorted_after = splits.train.labels;
  std::sort(sorted_before.begin(), sorted_before.end());
  std::sort(sorted_after.begin(), sorted_after.end());
  EXPECT_EQ(sorted_before, sorted_after);
  // Order actually changed.
  EXPECT_NE(before_labels, splits.train.labels);
}

TEST(Dataset, BatchViewsAreViews) {
  auto splits = make_synthetic_mnist(tiny());
  const auto batch = splits.train.batch_images(10, 5);
  EXPECT_EQ(batch.rows, 5);
  EXPECT_EQ(batch.cols, kImagePixels);
  EXPECT_EQ(batch.data, &splits.train.images(10, 0));
  const auto labels = splits.train.batch_labels(10, 5);
  EXPECT_EQ(labels.size(), 5u);
  EXPECT_EQ(labels[0], splits.train.labels[10]);
}

}  // namespace
}  // namespace apa::data
