#include "data/idx.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/synthetic_mnist.h"
#include "support/rng.h"

namespace apa::data {
namespace {

class IdxRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "apamm_idx_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(IdxRoundTrip, ImagesSurviveWriteRead) {
  Matrix<float> images(7, 28 * 28);
  Rng rng(1);
  fill_random_uniform<float>(images.view(), rng, 0.0f, 1.0f);
  const auto path = (dir_ / "imgs").string();
  write_idx_images(path, images.view().as_const(), 28, 28);
  const Matrix<float> back = read_idx_images(path);
  ASSERT_EQ(back.rows(), 7);
  ASSERT_EQ(back.cols(), 28 * 28);
  // u8 quantization: within 1/255 of half a step.
  EXPECT_LT(max_abs_diff(back.view(), images.view()), 0.5f / 255.0f + 1e-6f);
}

TEST_F(IdxRoundTrip, LabelsSurviveWriteRead) {
  const std::vector<int> labels = {0, 1, 9, 5, 5, 3};
  const auto path = (dir_ / "labels").string();
  write_idx_labels(path, labels);
  EXPECT_EQ(read_idx_labels(path), labels);
}

TEST_F(IdxRoundTrip, WrongMagicRejected) {
  const auto path = (dir_ / "bad").string();
  std::ofstream out(path, std::ios::binary);
  const char garbage[16] = "not an idx file";
  out.write(garbage, sizeof(garbage));
  out.close();
  EXPECT_THROW((void)read_idx_images(path), std::logic_error);
  EXPECT_THROW((void)read_idx_labels(path), std::logic_error);
}

TEST_F(IdxRoundTrip, TruncatedImageDataRejected) {
  Matrix<float> images(4, 4);
  images.set_zero();
  const auto path = (dir_ / "trunc").string();
  write_idx_images(path, images.view().as_const(), 2, 2);
  // Chop the file.
  std::filesystem::resize_file(path, 16 + 4);
  EXPECT_THROW((void)read_idx_images(path), std::logic_error);
}

TEST_F(IdxRoundTrip, MissingFileThrows) {
  EXPECT_THROW((void)read_idx_images((dir_ / "nope").string()), std::logic_error);
}

TEST_F(IdxRoundTrip, TryLoadMnistReturnsNulloptWhenAbsent) {
  EXPECT_FALSE(try_load_mnist(dir_.string()).has_value());
}

TEST_F(IdxRoundTrip, TryLoadMnistLoadsCanonicalFileNames) {
  // Materialize a tiny synthetic split under the canonical names.
  SyntheticMnistOptions opts;
  opts.train_size = 20;
  opts.test_size = 10;
  const auto splits = make_synthetic_mnist(opts);
  write_idx_images((dir_ / "train-images-idx3-ubyte").string(),
                   splits.train.images.view().as_const(), 28, 28);
  write_idx_labels((dir_ / "train-labels-idx1-ubyte").string(), splits.train.labels);
  write_idx_images((dir_ / "t10k-images-idx3-ubyte").string(),
                   splits.test.images.view().as_const(), 28, 28);
  write_idx_labels((dir_ / "t10k-labels-idx1-ubyte").string(), splits.test.labels);

  const auto loaded = try_load_mnist(dir_.string());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->train.size(), 20);
  EXPECT_EQ(loaded->test.size(), 10);
  EXPECT_EQ(loaded->train.labels, splits.train.labels);
}

}  // namespace
}  // namespace apa::data
