#include "tune/router.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/mlp.h"
#include "support/rng.h"

namespace apa::tune {
namespace {

constexpr index_t kDim = 96;
constexpr char kTestCpu[] = "router-test-cpu x8";

/// Deterministic cost function: bini322 one-step is always the cheapest,
/// classical-plain the most expensive. Replaces the wall clock so explore
/// outcomes are reproducible bit-for-bit.
double fixed_cost(const RouterCandidate& c, index_t /*m*/, index_t /*k*/,
                  index_t /*n*/) {
  if (c.algorithm == "bini322") return c.steps == 1 ? 1.0 : 2.0;
  return c.plan == PlanVariant::kPlain ? 8.0 : 4.0;
}

RouterOptions test_options() {
  RouterOptions options;
  options.algorithms = {"bini322"};
  options.min_dim = 32;
  options.backend.min_dim_for_fast = 32;
  options.cpu = kTestCpu;
  options.measure_override = fixed_cost;
  return options;
}

struct Problem {
  Matrix<float> a{kDim, kDim}, b{kDim, kDim}, c{kDim, kDim};
  Problem() {
    Rng rng(7);
    fill_random_uniform<float>(a.view(), rng);
    fill_random_uniform<float>(b.view(), rng);
  }
  void run(const nn::MatmulBackend& backend) {
    backend.matmul(a.view().as_const(), b.view().as_const(), c.view());
  }
};

/// Drives one shape until the router commits (bounded, so a regression cannot
/// hang the suite). Returns the number of calls it took.
int drive_to_decision(const TunedBackend& backend, Problem& problem) {
  for (int call = 1; call <= 64; ++call) {
    problem.run(backend);
    if (backend.is_decided(kDim, kDim, kDim)) return call;
  }
  ADD_FAILURE() << "router never committed a decision";
  return -1;
}

class TunedRouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("apamm_tune_router_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name()) +
              ".bin"))
                .string();
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_;
};

TEST_F(TunedRouterTest, ExploresThenCommitsTheCheapestCandidate) {
  const TunedBackend backend(test_options());
  Problem problem;
  drive_to_decision(backend, problem);

  const RouterStats stats = backend.stats();
  EXPECT_EQ(stats.decisions, 1u);
  EXPECT_GT(stats.explore_samples, 0u);
  EXPECT_EQ(stats.static_calls, 0u);

  const auto route = backend.route_for(kDim, kDim, kDim);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->algorithm, "bini322");
  EXPECT_EQ(route->steps, 1);
  EXPECT_EQ(route->expected_seconds, 1.0);  // the override's value, verbatim
  EXPECT_GT(route->lambda, 0.0);  // persisted effective lambda, not the 0 sentinel

  // Post-decision calls are exploit-only.
  const std::uint64_t explored = stats.explore_samples;
  problem.run(backend);
  EXPECT_EQ(backend.stats().explore_samples, explored);
  EXPECT_GT(backend.stats().decided_calls, 0u);
}

TEST_F(TunedRouterTest, EveryPhaseServesACorrectProduct) {
  const TunedBackend backend(test_options());
  const nn::MatmulBackend exact("classical");
  Problem problem;
  Matrix<float> reference(kDim, kDim);
  exact.matmul(problem.a.view().as_const(), problem.b.view().as_const(),
               reference.view());
  float ref_scale = 0.0f;
  for (index_t i = 0; i < kDim; ++i) {
    for (index_t j = 0; j < kDim; ++j) {
      ref_scale = std::max(ref_scale, std::abs(reference.view()(i, j)));
    }
  }
  double worst = 0.0;
  for (int call = 0; call < 16; ++call) {  // spans explore and exploit
    problem.run(backend);
    worst = std::max(worst,
                     max_abs_diff(problem.c.view(), reference.view()));
  }
  // The worst explored candidate (two-step bini322) sits near 1% relative
  // error; a routing bug (wrong operand, skipped product) is O(ref_scale).
  EXPECT_LT(worst, 0.02 * ref_scale);
}

TEST_F(TunedRouterTest, BelowMinDimIsStaticAndUntracked) {
  const TunedBackend backend(test_options());
  Matrix<float> a(16, 16), b(16, 16), c(16, 16);
  Rng rng(3);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  backend.matmul(a.view().as_const(), b.view().as_const(), c.view());
  EXPECT_EQ(backend.stats().static_calls, 1u);
  EXPECT_EQ(backend.stats().explore_samples, 0u);
  EXPECT_TRUE(backend.choice_table().empty());
}

TEST_F(TunedRouterTest, DisabledRouterBehavesStatically) {
  RouterOptions options = test_options();
  options.enabled = false;
  const TunedBackend backend(options);
  Problem problem;
  for (int i = 0; i < 4; ++i) problem.run(backend);
  EXPECT_EQ(backend.stats().static_calls, 4u);
  EXPECT_TRUE(backend.choice_table().empty());
  EXPECT_FALSE(backend.save());  // no cache path configured
}

TEST_F(TunedRouterTest, IdenticalProcessesProduceIdenticalTables) {
  // Two fresh "processes": same options, same override, same call sequence.
  const TunedBackend first(test_options());
  const TunedBackend second(test_options());
  Problem problem;
  drive_to_decision(first, problem);
  drive_to_decision(second, problem);
  EXPECT_EQ(first.choice_table(), second.choice_table());
}

TEST_F(TunedRouterTest, ColdAndWarmConvergeToTheSameTable) {
  RouterOptions options = test_options();
  options.cache_path = path_;
  const TunedBackend cold(options);
  Problem problem;
  drive_to_decision(cold, problem);
  EXPECT_GT(cold.stats().cache_saves, 0u);

  const TunedBackend warm(options);
  EXPECT_EQ(warm.stats().cache_status, CacheStatus::kLoaded);
  EXPECT_EQ(warm.stats().warm_entries, 1u);
  for (int i = 0; i < 4; ++i) problem.run(warm);
  EXPECT_EQ(warm.stats().explore_samples, 0u);  // warm-start: no exploration
  EXPECT_EQ(warm.choice_table(), cold.choice_table());
}

// Regression for a thread-safety-analysis finding: the constructor used to
// populate state_->entries / stats from the warm cache with no lock held,
// even though State is shared (via the state_ shared_ptr) and every other
// access is mutex-guarded. The load now happens under the state lock; this
// test pins the behavioral contract around that path — a warm router serves
// its loaded decisions immediately and consistently when many threads hit it
// straight out of the constructor (run under TSan in CI for the race itself).
TEST_F(TunedRouterTest, WarmLoadIsVisibleToImmediateConcurrentReaders) {
  RouterOptions options = test_options();
  options.cache_path = path_;
  {
    const TunedBackend cold(options);
    Problem problem;
    drive_to_decision(cold, problem);
  }

  const TunedBackend warm(options);
  constexpr int kThreads = 8;
  std::atomic<int> routed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&warm, &routed] {
      Problem problem;
      for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(warm.is_decided(kDim, kDim, kDim));
        const auto route = warm.route_for(kDim, kDim, kDim);
        ASSERT_TRUE(route.has_value());
        EXPECT_EQ(route->algorithm, "bini322");
        problem.run(warm);
        ++routed;
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(routed.load(), kThreads * 8);
  const RouterStats stats = warm.stats();
  EXPECT_EQ(stats.cache_status, CacheStatus::kLoaded);
  EXPECT_EQ(stats.warm_entries, 1u);
  EXPECT_EQ(stats.explore_samples, 0u);  // every call exploited the warm entry
  EXPECT_EQ(stats.decided_calls, static_cast<std::uint64_t>(kThreads) * 8);
}

TEST_F(TunedRouterTest, WarmRoutersTrainBitIdentically) {
  // The determinism contract of docs/TUNING.md: same cache file + same seed
  // => bit-identical routing and bit-identical training loss across fresh
  // router instances (stand-ins for fresh processes).
  RouterOptions options = test_options();
  options.cache_path = path_;
  {
    const TunedBackend cold(options);
    Problem problem;
    drive_to_decision(cold, problem);
  }

  nn::MlpConfig config;
  config.layer_sizes = {32, kDim, kDim, 10};
  config.seed = 11;
  Matrix<float> x(kDim, 32);
  Rng rng(5);
  fill_random_uniform<float>(x.view(), rng);
  std::vector<int> labels(kDim);
  for (index_t i = 0; i < kDim; ++i) labels[i] = static_cast<int>(i % 10);

  const auto run_process = [&] {
    auto tuned = std::make_shared<const TunedBackend>(options);
    EXPECT_EQ(tuned->stats().warm_entries, 1u);
    nn::Mlp model(config, tuned,
                  std::make_shared<const nn::MatmulBackend>("classical"));
    std::vector<double> losses;
    for (int step = 0; step < 5; ++step) {
      losses.push_back(model.train_step(x.view().as_const(), labels));
    }
    EXPECT_EQ(tuned->stats().explore_samples, 0u);
    return losses;
  };

  const std::vector<double> first = run_process();
  const std::vector<double> second = run_process();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "loss diverged at step " << i;
  }
}

TEST_F(TunedRouterTest, CorruptCacheFallsBackColdThenHeals) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "APAMM_TUN1 but then complete garbage follows here";
  }
  RouterOptions options = test_options();
  options.cache_path = path_;
  const TunedBackend backend(options);
  EXPECT_EQ(backend.stats().cache_status, CacheStatus::kCorrupt);
  EXPECT_EQ(backend.stats().warm_entries, 0u);

  // Cold tuning proceeds normally and the next autosave replaces the
  // corrupt file with a valid one.
  Problem problem;
  drive_to_decision(backend, problem);
  const CacheLoad healed = load_tuning_cache(path_, kTestCpu);
  EXPECT_EQ(healed.status, CacheStatus::kLoaded) << healed.detail;
  EXPECT_EQ(healed.entries.size(), 1u);
}

// Quarantine tripped *after* the tuner decided on an APA route: the guard
// overrides the tuner call-by-call (the decision table keeps the APA entry),
// and clearing the quarantine restores the tuned route.
TEST_F(TunedRouterTest, QuarantineOverridesDecisionUntilCleared) {
  auto inject = std::make_shared<std::atomic<bool>>(false);
  RouterOptions options = test_options();
  options.guard.quarantine_after = 1;
  options.guard.inject_fault = [inject](index_t, index_t, index_t,
                                        MatrixView<float> c) {
    if (inject->load()) c(0, 0) += 1e6f;
  };
  const TunedBackend backend(options);
  Problem problem;
  drive_to_decision(backend, problem);
  ASSERT_EQ(backend.route_for(kDim, kDim, kDim)->algorithm, "bini322");

  // Fault the routed product: the guard catches it, reruns with exact gemm
  // (the caller still gets a sound C), and quarantines the shape.
  inject->store(true);
  problem.run(backend);
  EXPECT_TRUE(backend.is_quarantined(kDim, kDim, kDim));
  const nn::GuardStats guard = backend.guard_stats();
  EXPECT_GE(guard.total_trips(), 1u);
  EXPECT_GE(guard.fallback_reruns, 1u);
  EXPECT_EQ(guard.shapes_quarantined, 1u);

  // While quarantined the route is overridden to classical...
  EXPECT_EQ(backend.route_for(kDim, kDim, kDim)->algorithm, "classical");
  const std::uint64_t overrides_before = backend.stats().quarantine_overrides;
  problem.run(backend);
  EXPECT_GT(backend.stats().quarantine_overrides, overrides_before);
  // ...but the committed decision is preserved, so lifting the quarantine
  // resumes the tuned APA route without re-exploring.
  inject->store(false);
  backend.clear_quarantine(kDim, kDim, kDim);
  EXPECT_FALSE(backend.is_quarantined(kDim, kDim, kDim));
  EXPECT_EQ(backend.route_for(kDim, kDim, kDim)->algorithm, "bini322");
  const std::uint64_t explored = backend.stats().explore_samples;
  problem.run(backend);
  EXPECT_EQ(backend.stats().explore_samples, explored);
}

// Quarantine tripped *during* exploration: the guard outranks the stopwatch,
// so the committed decision itself must avoid the APA rule even though the
// deterministic cost function scores it cheapest.
TEST_F(TunedRouterTest, QuarantineDuringExploreCommitsClassical) {
  RouterOptions options = test_options();
  options.guard.quarantine_after = 1;
  options.guard.inject_fault = [](index_t, index_t, index_t,
                                  MatrixView<float> c) {
    c(0, 0) += 1e6f;
  };
  const TunedBackend backend(options);
  Problem problem;
  drive_to_decision(backend, problem);

  const auto route = backend.route_for(kDim, kDim, kDim);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->algorithm, "classical");
  EXPECT_GE(backend.stats().quarantine_overrides, 1u);
  EXPECT_TRUE(backend.is_quarantined(kDim, kDim, kDim));
}

// Shared-cache concurrency (the TSan job runs this under -L tune): 8 threads
// hammer one router at the same shape plus a private shape each. Every call
// must be served, the shared shape must settle on the deterministic winner,
// and the counters must reconcile exactly.
TEST_F(TunedRouterTest, EightThreadsShareOneRouterSafely) {
  RouterOptions options = test_options();
  options.cache_path = path_;
  const TunedBackend backend(options);
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 24;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&backend, t] {
      Problem shared;
      // Distinct per-thread shape: (kDim + 32*t) x kDim x kDim.
      const index_t rows = kDim + 32 * t;
      Matrix<float> a(rows, kDim), b(kDim, kDim), c(rows, kDim);
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      fill_random_uniform<float>(a.view(), rng);
      fill_random_uniform<float>(b.view(), rng);
      for (int i = 0; i < kCallsPerThread; ++i) {
        shared.run(backend);
        backend.matmul(a.view().as_const(), b.view().as_const(), c.view());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_TRUE(backend.is_decided(kDim, kDim, kDim));
  const auto route = backend.route_for(kDim, kDim, kDim);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->algorithm, "bini322");  // deterministic despite the races
  const RouterStats stats = backend.stats();
  EXPECT_EQ(stats.decided_calls + stats.explore_samples,
            static_cast<std::uint64_t>(2 * kThreads * kCallsPerThread));
  EXPECT_EQ(stats.static_calls, 0u);
  // Autosaves from racing deciders must serialize into a loadable file.
  const CacheLoad saved = load_tuning_cache(path_, kTestCpu);
  EXPECT_EQ(saved.status, CacheStatus::kLoaded) << saved.detail;
  EXPECT_EQ(saved.entries.size(), backend.choice_table().size());
}

}  // namespace
}  // namespace apa::tune
