#include "tune/calibrate.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "blas/plan.h"
#include "core/fastmm.h"
#include "core/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/rng.h"

namespace apa::tune {
namespace {

/// Pulls `field` out of the BENCH_prepack.json row matching (backend, batch);
/// the committed bench artifact is the ground truth the calibrated model must
/// rank consistently with.
double bench_seconds(const std::string& json, const std::string& backend,
                     int batch) {
  const std::string row_key =
      "\"backend\": \"" + backend + "\", \"batch\": " + std::to_string(batch);
  const std::size_t row = json.find(row_key);
  EXPECT_NE(row, std::string::npos) << "no row for " << row_key;
  const std::string field_key = "\"plain_seconds\": ";
  const std::size_t field = json.find(field_key, row);
  EXPECT_NE(field, std::string::npos);
  return std::stod(json.substr(field + field_key.size()));
}

TEST(CalibrateTest, CalibrateAlwaysProducesUsableConstants) {
  const CostCalibration cal = calibrate(96);
  ASSERT_TRUE(cal.valid());
  EXPECT_GT(cal.gemm_gflops, 0.0);
  EXPECT_GT(cal.add_bandwidth, 0.0);
  // With the obs registry compiled in the probe traffic itself seeds it; with
  // obs compiled out the wall-clock fallback must have been taken.
  EXPECT_EQ(cal.from_obs, obs::kCompiledIn);
}

TEST(CalibrateTest, FromObsIsInvalidOnAColdRegistry) {
  obs::reset_counters();
  const CostCalibration cal = calibrate_from_obs();
  EXPECT_FALSE(cal.valid());
  EXPECT_FALSE(cal.from_obs);
}

TEST(CalibrateTest, OrdinaryTrafficSeedsTheRegistryCalibration) {
  obs::reset_counters();
  constexpr index_t kDim = 160;
  Rng rng(9);
  Matrix<float> a(kDim, kDim), b(kDim, kDim), c(kDim, kDim);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  blas::gemm_fused<float>(blas::Trans::kNo, blas::Trans::kNo,
                          a.view().as_const(), b.view().as_const(), c.view());
  const core::FastMatmul apa("bini322");
  apa.multiply(a.view().as_const(), b.view().as_const(), c.view());

  const CostCalibration cal = calibrate_from_obs();
  if (!obs::kCompiledIn) {
    EXPECT_FALSE(cal.valid());
    return;
  }
  ASSERT_TRUE(cal.valid()) << "instrumented traffic did not calibrate";
  EXPECT_TRUE(cal.from_obs);
  // The flop counter must cover at least the one explicit gemm above (the APA
  // multiply adds its sub-gemms on top).
  EXPECT_GE(cal.gemm_flops, 2ull * kDim * kDim * kDim);
  EXPECT_GT(cal.gemm_ns, 0u);
  EXPECT_GT(cal.combine_bytes, 0u);
  EXPECT_GT(cal.combine_ns, 0u);
}

TEST(CalibrateTest, ApplySeedsBackendCostConstants) {
  CostCalibration cal;
  cal.gemm_gflops = 33.0;
  cal.add_bandwidth = 5.5e9;
  nn::BackendOptions options;
  cal.apply(options);
  EXPECT_EQ(options.assumed_gemm_gflops, 33.0);
  EXPECT_EQ(options.assumed_add_bandwidth, 5.5e9);

  // An invalid calibration must leave the defaults untouched.
  nn::BackendOptions untouched;
  const double default_gflops = untouched.assumed_gemm_gflops;
  CostCalibration{}.apply(untouched);
  EXPECT_EQ(untouched.assumed_gemm_gflops, default_gflops);
}

TEST(CalibrateTest, PredictionsScaleWithProblemSize) {
  CostCalibration cal;
  cal.gemm_gflops = 40.0;
  cal.add_bandwidth = 8e9;
  EXPECT_GT(cal.predict_classical_seconds(512, 512, 512),
            cal.predict_classical_seconds(256, 256, 256));
  const core::Rule& rule = core::rule_by_name("bini322");
  EXPECT_GT(cal.predict_apa_seconds(rule, 512, 512, 512),
            cal.predict_apa_seconds(rule, 256, 256, 256));
  EXPECT_GT(cal.cost_inputs(rule, 512, 512, 512).sub_gemm_seconds, 0.0);
}

// Regression for the PR-4 leftover: the cost-model bench used hard-coded
// machine constants; now a calibrated model must rank the recorded
// BENCH_prepack.json regimes the way the hardware did — classical wins the
// small-batch regime, bini322 closes the gap as the batch grows (the shared
// operand combines amortize). The assertion is on the *relative ordering*, a
// machine-independent structural property, so the test holds on any host.
TEST(CalibrateTest, CalibratedModelRanksBenchRegimesCorrectly) {
  std::ifstream in(APAMM_REPO_DIR "/BENCH_prepack.json");
  ASSERT_TRUE(in.good()) << "missing BENCH_prepack.json";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  const double measured_small_ratio = bench_seconds(json, "bini322", 128) /
                                      bench_seconds(json, "classical", 128);
  const double measured_large_ratio = bench_seconds(json, "bini322", 4096) /
                                      bench_seconds(json, "classical", 4096);
  // The recorded hardware direction the model must reproduce.
  ASSERT_LT(measured_large_ratio, measured_small_ratio);

  const CostCalibration cal = calibrate(96);
  ASSERT_TRUE(cal.valid());
  const core::Rule& rule = core::rule_by_name("bini322");
  const auto predicted_ratio = [&](index_t batch) {
    return cal.predict_apa_seconds(rule, batch, 4096, 4096) /
           cal.predict_classical_seconds(batch, 4096, 4096);
  };
  EXPECT_LT(predicted_ratio(4096), predicted_ratio(128))
      << "calibrated model does not rank the batch regimes like the bench";
}

}  // namespace
}  // namespace apa::tune
