#include "tune/cache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "nn/checkpoint_io.h"
#include "support/rng.h"

namespace apa::tune {
namespace {

constexpr char kMagic[nn::ckpt::kMagicSize] = {'A', 'P', 'A', 'M', 'M',
                                               '_', 'T', 'U', 'N', '1'};
constexpr char kTestCpu[] = "test-cpu x8";

void write_string(std::ostream& out, const std::string& s) {
  nn::ckpt::write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void write_double(std::ostream& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  nn::ckpt::write_u64(out, bits);
}

/// One serialized entry with every field free — lets tests craft files whose
/// *checksum is valid* but whose content is out of domain, the case the
/// entry-level validation exists for.
struct RawEntry {
  std::uint64_t m = 256, k = 256, n = 256;
  std::string algorithm = "bini322";
  double lambda = 0.015625;
  std::uint64_t steps = 1;
  std::uint64_t strategy = 0;
  std::uint64_t plan = 0;
  double expected_seconds = 0.001;
  std::uint64_t samples = 2;
};

/// Writes a checksum-valid cache file from raw fields (same layout as
/// save_tuning_cache, but without its domain restrictions).
void craft_file(const std::string& path, std::uint64_t version,
                const std::string& cpu, const std::vector<RawEntry>& entries,
                const std::string& trailing = "") {
  std::ostringstream payload(std::ios::binary);
  nn::ckpt::write_u64(payload, version);
  write_string(payload, cpu);
  nn::ckpt::write_u64(payload, entries.size());
  for (const RawEntry& e : entries) {
    nn::ckpt::write_u64(payload, e.m);
    nn::ckpt::write_u64(payload, e.k);
    nn::ckpt::write_u64(payload, e.n);
    write_string(payload, e.algorithm);
    write_double(payload, e.lambda);
    nn::ckpt::write_u64(payload, e.steps);
    nn::ckpt::write_u64(payload, e.strategy);
    nn::ckpt::write_u64(payload, e.plan);
    write_double(payload, e.expected_seconds);
    nn::ckpt::write_u64(payload, e.samples);
  }
  nn::ckpt::write_checkpoint_file(path, kMagic, payload.str() + trailing);
}

std::vector<char> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_all(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

ChoiceTable sample_table() {
  ChoiceTable table;
  TunedChoice fast;
  fast.algorithm = "bini322";
  fast.lambda = 0.0009765625;
  fast.steps = 2;
  fast.strategy = core::Strategy::kHybrid;
  fast.plan = PlanVariant::kPrepack;
  fast.expected_seconds = 0.0025;
  fast.samples = 4;
  table[ShapeKey{512, 512, 512}] = fast;

  TunedChoice exact;  // all-default classical entry
  exact.expected_seconds = 0.0001;
  exact.samples = 2;
  table[ShapeKey{300, 300, 300}] = exact;

  TunedChoice plain;
  plain.plan = PlanVariant::kPlain;
  plain.expected_seconds = 0.5;
  plain.samples = 1;
  table[ShapeKey{4096, 1024, 128}] = plain;
  return table;
}

class TuningCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("apamm_tune_cache_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name()) +
              ".bin"))
                .string();
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_;
};

TEST_F(TuningCacheTest, RoundTripRestoresEveryField) {
  const ChoiceTable table = sample_table();
  save_tuning_cache(path_, table, kTestCpu);
  const CacheLoad load = load_tuning_cache(path_, kTestCpu);
  ASSERT_EQ(load.status, CacheStatus::kLoaded) << load.detail;
  EXPECT_EQ(load.entries, table);
  EXPECT_TRUE(load.detail.empty());
}

TEST_F(TuningCacheTest, SaveIsAtomicAndOverwrites) {
  save_tuning_cache(path_, sample_table(), kTestCpu);
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
  // Overwriting with a different table fully replaces the old contents.
  ChoiceTable smaller;
  smaller[ShapeKey{128, 128, 128}] = TunedChoice{};
  save_tuning_cache(path_, smaller, kTestCpu);
  const CacheLoad load = load_tuning_cache(path_, kTestCpu);
  ASSERT_EQ(load.status, CacheStatus::kLoaded);
  EXPECT_EQ(load.entries, smaller);
}

TEST_F(TuningCacheTest, MissingFileIsSoftMiss) {
  const CacheLoad load = load_tuning_cache(path_, kTestCpu);
  EXPECT_EQ(load.status, CacheStatus::kMissing);
  EXPECT_TRUE(load.entries.empty());
  EXPECT_FALSE(load.detail.empty());
}

TEST_F(TuningCacheTest, EveryTruncationIsRejectedWithoutCrashing) {
  save_tuning_cache(path_, sample_table(), kTestCpu);
  const std::vector<char> pristine = read_all(path_);
  ASSERT_GT(pristine.size(), 0u);
  for (std::size_t len = 0; len < pristine.size(); ++len) {
    write_all(path_, {pristine.begin(), pristine.begin() + len});
    const CacheLoad load = load_tuning_cache(path_, kTestCpu);
    EXPECT_NE(load.status, CacheStatus::kLoaded)
        << "truncation to " << len << " bytes was silently accepted";
    EXPECT_TRUE(load.entries.empty()) << "at length " << len;
  }
}

TEST_F(TuningCacheTest, EveryByteFlipIsRejected) {
  save_tuning_cache(path_, sample_table(), kTestCpu);
  const std::vector<char> pristine = read_all(path_);
  Rng rng(41);
  for (std::size_t offset = 0; offset < pristine.size(); ++offset) {
    std::vector<char> corrupted = pristine;
    corrupted[offset] ^= static_cast<char>(1 << rng.next_below(8));
    write_all(path_, corrupted);
    const CacheLoad load = load_tuning_cache(path_, kTestCpu);
    EXPECT_NE(load.status, CacheStatus::kLoaded)
        << "bit flip at offset " << offset << " was silently accepted";
    EXPECT_TRUE(load.entries.empty()) << "at offset " << offset;
  }
}

TEST_F(TuningCacheTest, BadMagicIsCorrupt) {
  save_tuning_cache(path_, sample_table(), kTestCpu);
  std::vector<char> bytes = read_all(path_);
  bytes[0] = 'X';
  write_all(path_, bytes);
  const CacheLoad load = load_tuning_cache(path_, kTestCpu);
  EXPECT_EQ(load.status, CacheStatus::kCorrupt);
  EXPECT_TRUE(load.entries.empty());
}

TEST_F(TuningCacheTest, FutureVersionWithValidChecksumIsBadVersion) {
  craft_file(path_, kCacheVersion + 1, kTestCpu, {RawEntry{}});
  const CacheLoad load = load_tuning_cache(path_, kTestCpu);
  EXPECT_EQ(load.status, CacheStatus::kBadVersion);
  EXPECT_TRUE(load.entries.empty());
  EXPECT_NE(load.detail.find("version"), std::string::npos);
}

TEST_F(TuningCacheTest, StaleCpuSignatureIsRejected) {
  save_tuning_cache(path_, sample_table(), "other-cpu x64");
  const CacheLoad load = load_tuning_cache(path_, kTestCpu);
  EXPECT_EQ(load.status, CacheStatus::kCpuMismatch);
  EXPECT_TRUE(load.entries.empty());
}

// A buggy or malicious producer can write a file whose checksum is perfectly
// valid but whose entries are out of domain. None of them may ever reach the
// router — and a single poisoned entry must reject the *whole* file (no
// partial loads).
TEST_F(TuningCacheTest, PoisonedEntriesNeverLoadEvenWithValidChecksum) {
  const auto poisoned = [](auto mutate) {
    RawEntry e;
    mutate(e);
    return e;
  };
  const std::vector<RawEntry> cases = {
      poisoned([](RawEntry& e) { e.m = 0; }),
      poisoned([](RawEntry& e) { e.n = nn::ckpt::kMaxDim; }),
      poisoned([](RawEntry& e) { e.algorithm = "no_such_algorithm"; }),
      poisoned([](RawEntry& e) { e.algorithm.assign(300, 'a'); }),
      poisoned([](RawEntry& e) { e.steps = 0; }),
      poisoned([](RawEntry& e) { e.steps = 9; }),
      poisoned([](RawEntry& e) {
        e.lambda = std::numeric_limits<double>::quiet_NaN();
      }),
      poisoned([](RawEntry& e) { e.lambda = -1.0; }),
      poisoned([](RawEntry& e) { e.strategy = 99; }),
      poisoned([](RawEntry& e) { e.plan = 7; }),
      poisoned([](RawEntry& e) {
        e.expected_seconds = -std::numeric_limits<double>::infinity();
      }),
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    // A pristine first entry must not survive its poisoned sibling.
    craft_file(path_, kCacheVersion, kTestCpu, {RawEntry{}, cases[i]});
    const CacheLoad load = load_tuning_cache(path_, kTestCpu);
    EXPECT_EQ(load.status, CacheStatus::kCorrupt) << "poison case " << i;
    EXPECT_TRUE(load.entries.empty()) << "poison case " << i;
    EXPECT_FALSE(load.detail.empty()) << "poison case " << i;
  }
}

TEST_F(TuningCacheTest, TrailingBytesAreCorrupt) {
  craft_file(path_, kCacheVersion, kTestCpu, {RawEntry{}}, "garbage");
  const CacheLoad load = load_tuning_cache(path_, kTestCpu);
  EXPECT_EQ(load.status, CacheStatus::kCorrupt);
  EXPECT_TRUE(load.entries.empty());
}

TEST_F(TuningCacheTest, ValidCraftedFileLoads) {
  // The crafting helper mirrors the production layout — prove agreement so
  // the poisoned-entry cases above test validation, not format drift.
  craft_file(path_, kCacheVersion, kTestCpu, {RawEntry{}});
  const CacheLoad load = load_tuning_cache(path_, kTestCpu);
  ASSERT_EQ(load.status, CacheStatus::kLoaded) << load.detail;
  ASSERT_EQ(load.entries.size(), 1u);
  const TunedChoice& choice = load.entries.at(ShapeKey{256, 256, 256});
  EXPECT_EQ(choice.algorithm, "bini322");
  EXPECT_EQ(choice.steps, 1);
  EXPECT_EQ(choice.lambda, 0.015625);
}

}  // namespace
}  // namespace apa::tune
