#include "blas/plan.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "blas/microkernel.h"
#include "support/check.h"
#include "support/matrix.h"
#include "support/rng.h"

namespace apa::blas {
namespace {

constexpr index_t kMr = detail::MicroShape<float>::kMr;
constexpr index_t kNr = detail::MicroShape<float>::kNr;

/// Builds op(A)/op(B) storage for the given transpose flags, runs gemm_planned
/// with the requested prepack combination, and compares against gemm_reference.
template <class T>
void run_planned_case(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                      bool prepack_a, bool prepack_b, int threads, double tol) {
  Rng rng(static_cast<std::uint64_t>(m * 733 + n * 37 + k * 5 + threads));
  const index_t a_rows = (ta == Trans::kYes) ? k : m;
  const index_t a_cols = (ta == Trans::kYes) ? m : k;
  const index_t b_rows = (tb == Trans::kYes) ? n : k;
  const index_t b_cols = (tb == Trans::kYes) ? k : n;
  Matrix<T> a(a_rows, a_cols), b(b_rows, b_cols), c(m, n), c_ref(m, n);
  fill_random_uniform<T>(a.view(), rng);
  fill_random_uniform<T>(b.view(), rng);
  c.set_zero();
  c_ref.set_zero();

  PackedPanel<T> pa, pb;
  if (prepack_a) pa = PackedPanel<T>::pack_a(ta == Trans::kYes, a.view().as_const());
  if (prepack_b) pb = PackedPanel<T>::pack_b(tb == Trans::kYes, b.view().as_const());
  gemm_planned<T>(ta, a.view().as_const(), prepack_a ? &pa : nullptr, tb,
                  b.view().as_const(), prepack_b ? &pb : nullptr, c.view(), T{1}, T{0},
                  {}, threads);
  gemm_reference<T>(ta, tb, m, n, k, T{1}, a.data(), a.ld(), b.data(), b.ld(), T{0},
                    c_ref.data(), c_ref.ld());
  EXPECT_LT(relative_frobenius_error(c.view().as_const(), c_ref.view().as_const()), tol)
      << "m=" << m << " n=" << n << " k=" << k << " ta=" << (ta == Trans::kYes)
      << " tb=" << (tb == Trans::kYes) << " pa=" << prepack_a << " pb=" << prepack_b;
}

// Edge dimensions around the register-tile shapes plus odd primes: a packed
// panel must reproduce exactly what on-the-fly packing produces at every
// micropanel boundary.
const std::vector<index_t> kEdgeDims = {1,       kMr - 1, kMr + 1, kNr - 1,
                                        kNr + 1, 37,      131};

using TransCase = std::tuple<int, int>;

class PlannedGemmTransposes : public ::testing::TestWithParam<TransCase> {};

TEST_P(PlannedGemmTransposes, PrepackedMatchesReferenceAtEdgeShapes) {
  const auto [ta_i, tb_i] = GetParam();
  const Trans ta = ta_i ? Trans::kYes : Trans::kNo;
  const Trans tb = tb_i ? Trans::kYes : Trans::kNo;
  for (const index_t m : kEdgeDims) {
    for (const index_t n : kEdgeDims) {
      for (const index_t k : kEdgeDims) {
        run_planned_case<float>(ta, tb, m, n, k, true, true, 1, 2e-5);
      }
    }
  }
}

TEST_P(PlannedGemmTransposes, SingleSidePrepackMatchesReference) {
  const auto [ta_i, tb_i] = GetParam();
  const Trans ta = ta_i ? Trans::kYes : Trans::kNo;
  const Trans tb = tb_i ? Trans::kYes : Trans::kNo;
  run_planned_case<float>(ta, tb, 67, 43, 29, true, false, 1, 2e-5);
  run_planned_case<float>(ta, tb, 67, 43, 29, false, true, 1, 2e-5);
  run_planned_case<double>(ta, tb, 31, 53, 17, true, false, 1, 1e-13);
  run_planned_case<double>(ta, tb, 31, 53, 17, false, true, 1, 1e-13);
}

TEST_P(PlannedGemmTransposes, PrepackedCrossesCacheBlockBoundaries) {
  const auto [ta_i, tb_i] = GetParam();
  const Trans ta = ta_i ? Trans::kYes : Trans::kNo;
  const Trans tb = tb_i ? Trans::kYes : Trans::kNo;
  // k > KC forces multiple packed k-blocks; m > MC multiple A blocks.
  run_planned_case<float>(ta, tb, 131, 47, 300, true, true, 1, 5e-5);
  run_planned_case<double>(ta, tb, 130, 33, 270, true, true, 1, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllCombos, PlannedGemmTransposes,
                         ::testing::Values(TransCase{0, 0}, TransCase{0, 1},
                                           TransCase{1, 0}, TransCase{1, 1}));

/// Unfused reference: plain product into a copy, then a separate full-matrix
/// epilogue pass. Fusion must be bit-identical (same per-element op order).
void expect_fusion_bit_exact(EpilogueKind kind, index_t m, index_t n, index_t k,
                             float alpha, float beta, int threads) {
  Rng rng(static_cast<std::uint64_t>(m * 19 + n * 7 + k + static_cast<int>(kind)));
  Matrix<float> a(m, k), b(k, n), c_fused(m, n), c_two_pass(m, n), bias(1, n);
  Matrix<float> gate(m, n);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  fill_random_uniform<float>(bias.view(), rng);
  // Mixed-sign inputs so ReLU and the gate actually cut.
  fill_random_uniform<float>(gate.view(), rng);
  for (auto& g : gate.span()) g -= 0.5f;
  fill_random_uniform<float>(c_fused.view(), rng);
  copy(c_fused.view().as_const(), c_two_pass.view());

  Epilogue<float> ep{kind, bias.data(), gate.view().as_const()};
  gemm_fused<float>(Trans::kNo, Trans::kNo, a.view(), b.view(), c_fused.view(), alpha,
                    beta, ep, threads);
  gemm_fused<float>(Trans::kNo, Trans::kNo, a.view(), b.view(), c_two_pass.view(),
                    alpha, beta, {}, threads);
  apply_epilogue<float>(ep, c_two_pass.view());
  EXPECT_EQ(max_abs_diff(c_fused.view(), c_two_pass.view()), 0.0)
      << "kind=" << static_cast<int>(kind) << " m=" << m << " n=" << n << " k=" << k;
}

TEST(EpilogueFusion, BitExactAgainstTwoPassAllKinds) {
  for (const EpilogueKind kind :
       {EpilogueKind::kBiasAdd, EpilogueKind::kRelu, EpilogueKind::kBiasAddRelu,
        EpilogueKind::kReluGrad}) {
    expect_fusion_bit_exact(kind, 33, 47, 29, 1.0f, 0.0f, 1);
    // Edge tiles in both directions and multiple k-blocks.
    expect_fusion_bit_exact(kind, kMr + 1, kNr + 1, 300, 1.0f, 0.0f, 1);
    // alpha/beta interact with the epilogue only through the product value.
    expect_fusion_bit_exact(kind, 40, 24, 16, -1.5f, 0.5f, 1);
  }
}

TEST(EpilogueFusion, BitExactUnderThreading) {
  for (const EpilogueKind kind : {EpilogueKind::kBiasAddRelu, EpilogueKind::kReluGrad}) {
    expect_fusion_bit_exact(kind, 64, 96, 130, 1.0f, 0.0f, 4);
  }
}

TEST(EpilogueFusion, DegenerateKStillAppliesEpilogue) {
  // k == 0 short-circuits the engine; the epilogue must still run.
  Matrix<float> c(2, 3), bias(1, 3);
  for (auto& v : c.span()) v = -1.0f;
  bias(0, 0) = 0.5f;
  bias(0, 1) = 2.0f;
  bias(0, 2) = -3.0f;
  Epilogue<float> ep{EpilogueKind::kBiasAddRelu, bias.data(), {}};
  const MatrixView<const float> empty_a{nullptr, 2, 0, 0};
  const MatrixView<const float> empty_b{nullptr, 0, 3, 3};
  gemm_planned<float>(Trans::kNo, empty_a, nullptr, Trans::kNo, empty_b, nullptr,
                      c.view(), 1.0f, 1.0f, ep);
  // c = relu(beta * (-1) + bias).
  EXPECT_EQ(c(0, 0), 0.0f);
  EXPECT_EQ(c(1, 1), 1.0f);
  EXPECT_EQ(c(1, 2), 0.0f);
}

TEST(PlannedGemm, ParallelBitIdenticalToSerial) {
  Rng rng(99);
  const index_t m = 70, n = 150, k = 280;
  Matrix<float> a(m, k), b(k, n), c1(m, n), c4(m, n);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  gemm_fused<float>(Trans::kNo, Trans::kNo, a.view(), b.view(), c1.view(), 1.0f, 0.0f,
                    {}, 1);
  gemm_fused<float>(Trans::kNo, Trans::kNo, a.view(), b.view(), c4.view(), 1.0f, 0.0f,
                    {}, 4);
  EXPECT_EQ(max_abs_diff(c1.view(), c4.view()), 0.0);
}

TEST(PlannedGemm, PrepackedBitIdenticalToOnTheFly) {
  // A prepacked panel holds exactly the bytes on-the-fly packing would
  // produce, so results must match bit for bit, not just to tolerance.
  Rng rng(7);
  const index_t m = 61, n = 77, k = 131;
  Matrix<float> a(k, m), b(k, n), c_packed(m, n), c_plain(m, n);  // A stored as A^T
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  const PackedPanel<float> pa = PackedPanel<float>::pack_a(true, a.view().as_const());
  const PackedPanel<float> pb = PackedPanel<float>::pack_b(false, b.view().as_const());
  gemm_planned<float>(Trans::kYes, a.view().as_const(), &pa, Trans::kNo,
                      b.view().as_const(), &pb, c_packed.view());
  gemm_planned<float>(Trans::kYes, a.view().as_const(), nullptr, Trans::kNo,
                      b.view().as_const(), nullptr, c_plain.view());
  EXPECT_EQ(max_abs_diff(c_packed.view(), c_plain.view()), 0.0);
}

TEST(GemmPlan, PanelsMatchedByShapeAndReusedAcrossCalls) {
  Rng rng(11);
  const index_t k = 96, n = 64;
  Matrix<float> w(k, n), x1(33, k), x2(70, k), c(33, n), c_ref(33, n), d(70, n),
      d_ref(70, n);
  fill_random_uniform<float>(w.view(), rng);
  fill_random_uniform<float>(x1.view(), rng);
  fill_random_uniform<float>(x2.view(), rng);

  GemmPlan<float> plan;
  EXPECT_FALSE(plan.has_packed_b());
  plan.set_packed_b(false, w.view().as_const());
  EXPECT_TRUE(plan.has_packed_b());
  EXPECT_NE(plan.packed_b_for(k, n), nullptr);
  EXPECT_EQ(plan.packed_b_for(n, k), nullptr);  // wrong op-shape: ignored
  EXPECT_EQ(plan.packed_a_for(k, n), nullptr);  // side A never packed

  // Two different batch sizes against the same packed weights.
  plan.run(Trans::kNo, x1.view().as_const(), Trans::kNo, w.view().as_const(), c.view());
  plan.run(Trans::kNo, x2.view().as_const(), Trans::kNo, w.view().as_const(), d.view());
  gemm_reference<float>(Trans::kNo, Trans::kNo, 33, n, k, 1.0f, x1.data(), x1.ld(),
                        w.data(), w.ld(), 0.0f, c_ref.data(), c_ref.ld());
  gemm_reference<float>(Trans::kNo, Trans::kNo, 70, n, k, 1.0f, x2.data(), x2.ld(),
                        w.data(), w.ld(), 0.0f, d_ref.data(), d_ref.ld());
  EXPECT_LT(relative_frobenius_error(c.view().as_const(), c_ref.view().as_const()),
            2e-5);
  EXPECT_LT(relative_frobenius_error(d.view().as_const(), d_ref.view().as_const()),
            2e-5);

  plan.reset();
  EXPECT_FALSE(plan.has_packed_b());
}

TEST(GemmPlan, TransposedWeightPackMatchesExplicitTranspose) {
  Rng rng(13);
  const index_t in = 45, out = 52, batch = 21;
  Matrix<float> w(in, out), dy(batch, out), dx_planned(batch, in), dx_ref(batch, in);
  fill_random_uniform<float>(w.view(), rng);
  fill_random_uniform<float>(dy.view(), rng);

  // dx = dy * W^T with W^T packed once from the stored W.
  GemmPlan<float> plan;
  plan.set_packed_b(/*trans=*/true, w.view().as_const());
  plan.run(Trans::kNo, dy.view().as_const(), Trans::kYes, w.view().as_const(),
           dx_planned.view());
  gemm_reference<float>(Trans::kNo, Trans::kYes, batch, in, out, 1.0f, dy.data(),
                        dy.ld(), w.data(), w.ld(), 0.0f, dx_ref.data(), dx_ref.ld());
  EXPECT_LT(
      relative_frobenius_error(dx_planned.view().as_const(), dx_ref.view().as_const()),
      2e-5);
}

TEST(PlannedGemm, MismatchedPanelIsRejected) {
  Matrix<float> a(8, 8), b(8, 8), c(8, 8);
  a.set_zero();
  b.set_zero();
  const PackedPanel<float> pa = PackedPanel<float>::pack_a(false, a.view().as_const());
  Matrix<float> a_small(4, 8), c_small(4, 8);
  a_small.set_zero();
  // Panel packed for 8x8 op(A) passed with a 4x8 view: hard error, never a
  // silent wrong answer.
  EXPECT_THROW(gemm_planned<float>(Trans::kNo, a_small.view().as_const(), &pa,
                                   Trans::kNo, b.view().as_const(), nullptr,
                                   c_small.view()),
               ApaError);
}

}  // namespace
}  // namespace apa::blas
