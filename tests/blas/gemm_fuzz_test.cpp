// Randomized GEMM fuzzing: random shapes, transposes, scalars, thread counts
// and embedded (strided) operands against the reference implementation.

#include <gtest/gtest.h>

#include "blas/gemm.h"
#include "blas/plan.h"
#include "support/matrix.h"
#include "support/rng.h"

namespace apa::blas {
namespace {

TEST(GemmFuzz, RandomShapesAndScalars) {
  Rng rng(20260705);
  for (int trial = 0; trial < 40; ++trial) {
    const index_t m = 1 + static_cast<index_t>(rng.next_below(200));
    const index_t n = 1 + static_cast<index_t>(rng.next_below(200));
    const index_t k = 1 + static_cast<index_t>(rng.next_below(300));
    const Trans ta = rng.next_below(2) ? Trans::kYes : Trans::kNo;
    const Trans tb = rng.next_below(2) ? Trans::kYes : Trans::kNo;
    const float alpha = static_cast<float>(rng.uniform(-2, 2));
    const float beta = rng.next_below(2) ? 0.0f : static_cast<float>(rng.uniform(-1, 1));
    const int threads = 1 + static_cast<int>(rng.next_below(4));

    const index_t a_rows = ta == Trans::kYes ? k : m;
    const index_t a_cols = ta == Trans::kYes ? m : k;
    const index_t b_rows = tb == Trans::kYes ? n : k;
    const index_t b_cols = tb == Trans::kYes ? k : n;
    Matrix<float> a(a_rows, a_cols), b(b_rows, b_cols), c(m, n), ref(m, n);
    fill_random_uniform<float>(a.view(), rng);
    fill_random_uniform<float>(b.view(), rng);
    fill_random_uniform<float>(c.view(), rng);
    copy(c.view(), ref.view());

    gemm<float>(ta, tb, m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(), beta,
                c.data(), c.ld(), threads);
    gemm_reference<float>(ta, tb, m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(),
                          beta, ref.data(), ref.ld());
    ASSERT_LT(relative_frobenius_error(c.view(), ref.view()), 1e-4)
        << "trial " << trial << ": m=" << m << " n=" << n << " k=" << k
        << " ta=" << (ta == Trans::kYes) << " tb=" << (tb == Trans::kYes)
        << " alpha=" << alpha << " beta=" << beta << " threads=" << threads;
  }
}

TEST(GemmFuzz, EmbeddedBlocksWithRandomOffsets) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const index_t big = 180;
    Matrix<float> storage_a(big, big), storage_b(big, big), storage_c(big, big);
    fill_random_uniform<float>(storage_a.view(), rng);
    fill_random_uniform<float>(storage_b.view(), rng);
    storage_c.set_zero();

    const index_t m = 1 + static_cast<index_t>(rng.next_below(60));
    const index_t k = 1 + static_cast<index_t>(rng.next_below(60));
    const index_t n = 1 + static_cast<index_t>(rng.next_below(60));
    const index_t oa = rng.next_below(big - std::max(m, k));
    const index_t ob = rng.next_below(big - std::max(k, n));
    const index_t oc = rng.next_below(big - std::max(m, n));

    auto a_blk = storage_a.view().block(oa, oa, m, k);
    auto b_blk = storage_b.view().block(ob, ob, k, n);
    auto c_blk = storage_c.view().block(oc, oc, m, n);
    gemm<float>(a_blk.as_const(), b_blk.as_const(), c_blk);

    Matrix<float> ref(m, n);
    gemm_reference<float>(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a_blk.data, a_blk.ld,
                          b_blk.data, b_blk.ld, 0.0f, ref.data(), ref.ld());
    ASSERT_LT(relative_frobenius_error(c_blk, ref.view()), 1e-4) << "trial " << trial;
  }
}

TEST(GemmFuzz, PlannedPrepackTransposeEpilogueCombos) {
  // gemm_planned under randomized prepack sides, transposes, scalars, thread
  // counts, and every epilogue kind. Two invariants per trial:
  //   1. prepacked panels are bit-identical to on-the-fly packing (the pack
  //      layout contract the NN plans rely on);
  //   2. the fused result tracks reference gemm + unfused epilogue pass.
  Rng rng(20260805);
  for (int trial = 0; trial < 60; ++trial) {
    const index_t m = 1 + static_cast<index_t>(rng.next_below(120));
    const index_t n = 1 + static_cast<index_t>(rng.next_below(120));
    const index_t k = 1 + static_cast<index_t>(rng.next_below(160));
    const Trans ta = rng.next_below(2) ? Trans::kYes : Trans::kNo;
    const Trans tb = rng.next_below(2) ? Trans::kYes : Trans::kNo;
    const float alpha = static_cast<float>(rng.uniform(-2, 2));
    const float beta = rng.next_below(2) ? 0.0f : static_cast<float>(rng.uniform(-1, 1));
    const int pack_threads = 1 + static_cast<int>(rng.next_below(4));
    const int threads = 1 + static_cast<int>(rng.next_below(4));

    const index_t a_rows = ta == Trans::kYes ? k : m;
    const index_t a_cols = ta == Trans::kYes ? m : k;
    const index_t b_rows = tb == Trans::kYes ? n : k;
    const index_t b_cols = tb == Trans::kYes ? k : n;
    Matrix<float> a(a_rows, a_cols), b(b_rows, b_cols);
    Matrix<float> c_planned(m, n), c_fused(m, n), ref(m, n);
    fill_random_uniform<float>(a.view(), rng, -1.0f, 1.0f);
    fill_random_uniform<float>(b.view(), rng, -1.0f, 1.0f);
    fill_random_uniform<float>(c_planned.view(), rng, -1.0f, 1.0f);
    copy(c_planned.view(), c_fused.view());
    copy(c_planned.view(), ref.view());

    Epilogue<float> ep;
    Matrix<float> bias(1, n), gate(m, n);
    fill_random_uniform<float>(bias.view(), rng, -1.0f, 1.0f);
    fill_random_uniform<float>(gate.view(), rng, -1.0f, 1.0f);
    switch (rng.next_below(5)) {
      case 0:
        break;
      case 1:
        ep.kind = EpilogueKind::kBiasAdd;
        ep.bias = bias.data();
        break;
      case 2:
        ep.kind = EpilogueKind::kRelu;
        break;
      case 3:
        ep.kind = EpilogueKind::kBiasAddRelu;
        ep.bias = bias.data();
        break;
      default:
        ep.kind = EpilogueKind::kReluGrad;
        ep.gate = gate.view().as_const();
        break;
    }

    const bool prepack_a = rng.next_below(2) != 0;
    const bool prepack_b = rng.next_below(2) != 0;
    PackedPanel<float> pa, pb;
    if (prepack_a) {
      pa = PackedPanel<float>::pack_a(ta == Trans::kYes, a.view().as_const(),
                                      pack_threads);
    }
    if (prepack_b) {
      pb = PackedPanel<float>::pack_b(tb == Trans::kYes, b.view().as_const(),
                                      pack_threads);
    }

    gemm_planned<float>(ta, a.view().as_const(), prepack_a ? &pa : nullptr, tb,
                        b.view().as_const(), prepack_b ? &pb : nullptr,
                        c_planned.view(), alpha, beta, ep, threads);
    gemm_fused<float>(ta, tb, a.view().as_const(), b.view().as_const(),
                      c_fused.view(), alpha, beta, ep, threads);
    ASSERT_EQ(max_abs_diff(c_planned.view(), c_fused.view()), 0.0)
        << "prepack changed bits: trial " << trial << " m=" << m << " n=" << n
        << " k=" << k << " ta=" << (ta == Trans::kYes) << " tb=" << (tb == Trans::kYes)
        << " packA=" << prepack_a << " packB=" << prepack_b
        << " ep=" << static_cast<int>(ep.kind);

    gemm_reference<float>(ta, tb, m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(),
                          beta, ref.data(), ref.ld());
    apply_epilogue<float>(ep, ref.view());
    ASSERT_LT(relative_frobenius_error(c_planned.view(), ref.view()), 1e-4)
        << "trial " << trial << " ep=" << static_cast<int>(ep.kind) << " m=" << m
        << " n=" << n << " k=" << k << " alpha=" << alpha << " beta=" << beta;
  }
}

}  // namespace
}  // namespace apa::blas
