#include "blas/combine.h"

#include <gtest/gtest.h>

#include <vector>

#include "support/matrix.h"
#include "support/rng.h"

namespace apa::blas {
namespace {

template <class T>
Matrix<T> random_matrix(index_t r, index_t c, Rng& rng) {
  Matrix<T> m(r, c);
  fill_random_uniform<T>(m.view(), rng);
  return m;
}

template <class T>
void check_combination(std::size_t arity, int threads) {
  Rng rng(arity * 31 + threads);
  const index_t rows = 37, cols = 53;
  std::vector<Matrix<T>> inputs;
  std::vector<Scaled<T>> terms;
  std::vector<T> coeffs;
  inputs.reserve(arity);
  for (std::size_t i = 0; i < arity; ++i) {
    inputs.push_back(random_matrix<T>(rows, cols, rng));
    coeffs.push_back(static_cast<T>(rng.uniform(-2, 2)));
  }
  for (std::size_t i = 0; i < arity; ++i) {
    terms.push_back({coeffs[i], inputs[i].view()});
  }
  Matrix<T> y(rows, cols);
  fill_random_uniform<T>(y.view(), rng);  // must be fully overwritten
  linear_combination<T>(terms, y.view(), threads);

  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) {
      double expect = 0;
      for (std::size_t t = 0; t < arity; ++t) {
        expect += static_cast<double>(coeffs[t]) * static_cast<double>(inputs[t](i, j));
      }
      EXPECT_NEAR(static_cast<double>(y(i, j)), expect, 1e-5)
          << "arity=" << arity << " (" << i << "," << j << ")";
    }
  }
}

class CombineArity : public ::testing::TestWithParam<int> {};

TEST_P(CombineArity, FloatSingleThread) { check_combination<float>(GetParam(), 1); }
TEST_P(CombineArity, FloatMultiThread) { check_combination<float>(GetParam(), 4); }
TEST_P(CombineArity, Double) { check_combination<double>(GetParam(), 1); }

INSTANTIATE_TEST_SUITE_P(Arities, CombineArity, ::testing::Values(1, 2, 3, 4, 5, 7, 10));

TEST(Combine, StreamingMatchesWriteOnce) {
  Rng rng(12);
  const index_t rows = 45, cols = 67;
  std::vector<Matrix<float>> inputs;
  std::vector<Scaled<float>> terms;
  for (int i = 0; i < 5; ++i) {
    inputs.push_back(random_matrix<float>(rows, cols, rng));
  }
  for (int i = 0; i < 5; ++i) {
    terms.push_back({0.5f * static_cast<float>(i + 1), inputs[i].view()});
  }
  Matrix<float> y_wo(rows, cols), y_st(rows, cols);
  linear_combination<float>(terms, y_wo.view());
  linear_combination_streaming<float>(terms, y_st.view());
  EXPECT_LT(max_abs_diff(y_wo.view(), y_st.view()), 1e-5);
  // Multithreaded streaming agrees too.
  Matrix<float> y_mt(rows, cols);
  linear_combination_streaming<float>(terms, y_mt.view(), 4);
  EXPECT_LT(max_abs_diff(y_st.view(), y_mt.view()), 1e-6);
}

TEST(Combine, StreamingEmptyTermsZeroes) {
  Matrix<float> y(3, 3);
  for (auto& v : y.span()) v = 5.0f;
  linear_combination_streaming<float>(std::span<const Scaled<float>>{}, y.view());
  for (auto v : y.span()) EXPECT_EQ(v, 0.0f);
}

TEST(Combine, EmptyTermsZeroesOutput) {
  Matrix<float> y(4, 4);
  for (auto& x : y.span()) x = 9.0f;
  linear_combination<float>(std::vector<Scaled<float>>{}, y.view());
  for (auto x : y.span()) EXPECT_EQ(x, 0.0f);
}

TEST(Combine, StridedViews) {
  Rng rng(3);
  Matrix<float> big(20, 20);
  fill_random_uniform<float>(big.view(), rng);
  auto x0 = big.view().block(0, 0, 8, 8);
  auto x1 = big.view().block(10, 10, 8, 8);
  Matrix<float> y(8, 8);
  std::vector<Scaled<float>> terms = {{2.0f, x0.as_const()}, {-1.0f, x1.as_const()}};
  linear_combination<float>(terms, y.view());
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = 0; j < 8; ++j) {
      EXPECT_FLOAT_EQ(y(i, j), 2.0f * big(i, j) - big(10 + i, 10 + j));
    }
  }
}

TEST(Combine, ShapeMismatchThrows) {
  Matrix<float> x(3, 3), y(4, 4);
  std::vector<Scaled<float>> terms = {{1.0f, x.view().as_const()}};
  EXPECT_THROW(linear_combination<float>(terms, y.view()), std::logic_error);
}

TEST(Combine, WriteOnceOverwritesAliasedAccumulation) {
  // Output initially holds garbage including NaN; write-once must not read it.
  Matrix<float> x(4, 4);
  x.set_zero();
  Matrix<float> y(4, 4);
  for (auto& v : y.span()) v = std::numeric_limits<float>::quiet_NaN();
  std::vector<Scaled<float>> terms = {{1.0f, x.view().as_const()}};
  linear_combination<float>(terms, y.view());
  for (auto v : y.span()) EXPECT_EQ(v, 0.0f);
}

TEST(Combine, SingleRowManyThreadsFallsBackSafely) {
  Matrix<float> x(1, 100), y(1, 100);
  Rng rng(8);
  fill_random_uniform<float>(x.view(), rng);
  std::vector<Scaled<float>> terms = {{3.0f, x.view().as_const()}};
  linear_combination<float>(terms, y.view(), 8);
  for (index_t j = 0; j < 100; ++j) EXPECT_FLOAT_EQ(y(0, j), 3.0f * x(0, j));
}

}  // namespace
}  // namespace apa::blas
