#include "blas/gemm.h"

#include <gtest/gtest.h>

#include <tuple>

#include "support/matrix.h"
#include "support/rng.h"

namespace apa::blas {
namespace {

template <class T>
void run_case(Trans ta, Trans tb, index_t m, index_t n, index_t k, T alpha, T beta,
              int threads, double tol) {
  Rng rng(static_cast<std::uint64_t>(m * 131 + n * 17 + k + threads));
  // Allocate storage in stored orientation.
  const index_t a_rows = (ta == Trans::kYes) ? k : m;
  const index_t a_cols = (ta == Trans::kYes) ? m : k;
  const index_t b_rows = (tb == Trans::kYes) ? n : k;
  const index_t b_cols = (tb == Trans::kYes) ? k : n;
  Matrix<T> a(a_rows, a_cols), b(b_rows, b_cols), c(m, n), c_ref(m, n);
  fill_random_uniform<T>(a.view(), rng);
  fill_random_uniform<T>(b.view(), rng);
  fill_random_uniform<T>(c.view(), rng);
  copy<T>(c.view(), c_ref.view());

  gemm<T>(ta, tb, m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(), beta, c.data(),
          c.ld(), threads);
  gemm_reference<T>(ta, tb, m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(), beta,
                    c_ref.data(), c_ref.ld());
  EXPECT_LT(relative_frobenius_error(c.view().as_const(), c_ref.view().as_const()), tol)
      << "m=" << m << " n=" << n << " k=" << k << " ta=" << (ta == Trans::kYes)
      << " tb=" << (tb == Trans::kYes) << " threads=" << threads;
}

using ShapeCase = std::tuple<int, int, int>;

class GemmShapes : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(GemmShapes, FloatMatchesReferenceAllTransposeCombos) {
  const auto [m, n, k] = GetParam();
  for (Trans ta : {Trans::kNo, Trans::kYes}) {
    for (Trans tb : {Trans::kNo, Trans::kYes}) {
      run_case<float>(ta, tb, m, n, k, 1.0f, 0.0f, 1, 2e-5);
    }
  }
}

TEST_P(GemmShapes, DoubleMatchesReference) {
  const auto [m, n, k] = GetParam();
  run_case<double>(Trans::kNo, Trans::kNo, m, n, k, 1.0, 0.0, 1, 1e-13);
  run_case<double>(Trans::kYes, Trans::kNo, m, n, k, 1.0, 0.0, 1, 1e-13);
}

TEST_P(GemmShapes, AlphaBetaUpdate) {
  const auto [m, n, k] = GetParam();
  run_case<float>(Trans::kNo, Trans::kNo, m, n, k, 2.5f, -0.5f, 1, 2e-5);
  run_case<double>(Trans::kNo, Trans::kNo, m, n, k, -1.0, 2.0, 1, 1e-13);
}

TEST_P(GemmShapes, MultithreadedMatchesReference) {
  const auto [m, n, k] = GetParam();
  run_case<float>(Trans::kNo, Trans::kNo, m, n, k, 1.0f, 0.0f, 4, 2e-5);
  run_case<float>(Trans::kYes, Trans::kYes, m, n, k, 1.0f, 1.0f, 3, 2e-5);
}

// Shapes chosen to hit: tiny, below one microtile, exact tile multiples,
// ragged edges in every dimension, skinny and fat aspect ratios, and sizes
// that cross the KC/MC/NC cache-blocking boundaries.
INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(
        ShapeCase{1, 1, 1}, ShapeCase{2, 3, 4}, ShapeCase{5, 7, 3},
        ShapeCase{6, 16, 8}, ShapeCase{12, 32, 16}, ShapeCase{7, 17, 9},
        ShapeCase{13, 29, 31}, ShapeCase{48, 48, 48}, ShapeCase{64, 64, 64},
        ShapeCase{100, 100, 100}, ShapeCase{121, 130, 259}, ShapeCase{128, 2048 + 16, 64},
        ShapeCase{130, 70, 300}, ShapeCase{1, 256, 256}, ShapeCase{256, 1, 256},
        ShapeCase{256, 256, 1}, ShapeCase{311, 97, 151}));

TEST(Gemm, ZeroSizeIsNoop) {
  float c = 42.0f;
  gemm<float>(Trans::kNo, Trans::kNo, 0, 0, 0, 1.0f, nullptr, 1, nullptr, 1, 0.0f, &c, 1);
  EXPECT_EQ(c, 42.0f);
}

TEST(Gemm, KZeroScalesCByBeta) {
  Matrix<float> c(2, 2);
  c(0, 0) = 1;
  c(0, 1) = 2;
  c(1, 0) = 3;
  c(1, 1) = 4;
  gemm<float>(Trans::kNo, Trans::kNo, 2, 2, 0, 1.0f, nullptr, 1, nullptr, 1, 0.5f,
              c.data(), c.ld());
  EXPECT_EQ(c(1, 1), 2.0f);
}

TEST(Gemm, AlphaZeroBetaZeroClearsCEvenIfCHasNans) {
  Matrix<float> a(2, 2), b(2, 2), c(2, 2);
  a.set_zero();
  b.set_zero();
  for (auto& x : c.span()) x = std::numeric_limits<float>::quiet_NaN();
  gemm<float>(Trans::kNo, Trans::kNo, 2, 2, 2, 0.0f, a.data(), 2, b.data(), 2, 0.0f,
              c.data(), 2);
  for (auto x : c.span()) EXPECT_EQ(x, 0.0f);
}

TEST(Gemm, StridedViewsRespectLeadingDimension) {
  // Multiply sub-blocks embedded in larger matrices.
  Rng rng(5);
  Matrix<float> big_a(40, 40), big_b(40, 40), big_c(40, 40), ref(16, 12);
  fill_random_uniform<float>(big_a.view(), rng);
  fill_random_uniform<float>(big_b.view(), rng);
  big_c.set_zero();
  auto a_blk = big_a.view().block(2, 3, 16, 20);
  auto b_blk = big_b.view().block(1, 5, 20, 12);
  auto c_blk = big_c.view().block(4, 6, 16, 12);
  gemm<float>(a_blk.as_const(), b_blk.as_const(), c_blk);
  gemm_reference<float>(Trans::kNo, Trans::kNo, 16, 12, 20, 1.0f, a_blk.data, a_blk.ld,
                        b_blk.data, b_blk.ld, 0.0f, ref.data(), ref.ld());
  EXPECT_LT(relative_frobenius_error(c_blk.as_const(), ref.view().as_const()), 2e-5);
  // Ensure nothing outside the C block was touched.
  EXPECT_EQ(big_c(0, 0), 0.0f);
  EXPECT_EQ(big_c(30, 30), 0.0f);
}

TEST(Gemm, IdentityTimesMatrixIsMatrix) {
  const index_t n = 65;
  Matrix<float> eye(n, n), b(n, n), c(n, n);
  eye.set_zero();
  for (index_t i = 0; i < n; ++i) eye(i, i) = 1.0f;
  Rng rng(21);
  fill_random_uniform<float>(b.view(), rng);
  gemm<float>(eye.view(), b.view(), c.view());
  EXPECT_LT(max_abs_diff(c.view(), b.view()), 1e-6);
}

TEST(Gemm, AccumulationAcrossKBlocks) {
  // k larger than KC forces multiple packed passes with beta=1 accumulation.
  run_case<float>(Trans::kNo, Trans::kNo, 33, 47, 700, 1.0f, 0.0f, 1, 5e-5);
  run_case<double>(Trans::kNo, Trans::kNo, 33, 47, 700, 1.0, 0.0, 1, 1e-12);
}

TEST(Gemm, ManyThreadsOnSmallMatrixStillCorrect) {
  run_case<float>(Trans::kNo, Trans::kNo, 8, 8, 8, 1.0f, 0.0f, 16, 2e-5);
}

}  // namespace
}  // namespace apa::blas
