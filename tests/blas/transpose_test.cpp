#include "blas/transpose.h"

#include <gtest/gtest.h>

#include "support/matrix.h"
#include "support/rng.h"

namespace apa::blas {
namespace {

class TransposeShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TransposeShapes, RoundTripIsIdentity) {
  const auto [r, c] = GetParam();
  Rng rng(r * 100 + c);
  Matrix<float> m(r, c), t(c, r), back(r, c);
  fill_random_uniform<float>(m.view(), rng);
  transpose<float>(m.view(), t.view());
  transpose<float>(t.view(), back.view());
  EXPECT_EQ(max_abs_diff(m.view(), back.view()), 0.0);
}

TEST_P(TransposeShapes, ElementsMapped) {
  const auto [r, c] = GetParam();
  Matrix<double> m(r, c), t(c, r);
  for (index_t i = 0; i < r; ++i) {
    for (index_t j = 0; j < c; ++j) m(i, j) = i * 1000.0 + j;
  }
  transpose<double>(m.view(), t.view());
  for (index_t i = 0; i < r; ++i) {
    for (index_t j = 0; j < c; ++j) EXPECT_EQ(t(j, i), m(i, j));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TransposeShapes,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 7},
                                           std::pair{7, 1}, std::pair{31, 33},
                                           std::pair{32, 32}, std::pair{64, 33},
                                           std::pair{100, 300}));

TEST(Transpose, WrongShapeThrows) {
  Matrix<float> m(3, 4), t(3, 4);
  EXPECT_THROW(transpose<float>(m.view(), t.view()), std::logic_error);
}

}  // namespace
}  // namespace apa::blas
