// Cross-module integration tests: the full paper pipeline (data -> MLP with
// APA middle layer -> accuracy) and the serialization -> execution round trip.

#include <gtest/gtest.h>

#include <sstream>

#include "core/fastmm.h"
#include "core/registry.h"
#include "core/serialize.h"
#include "data/synthetic_mnist.h"
#include "nn/trainer.h"
#include "nn/vgg.h"

namespace apa {
namespace {

TEST(EndToEnd, MlpWithApaMiddleLayerLearnsSyntheticMnist) {
  data::SyntheticMnistOptions gen;
  gen.train_size = 4500;
  gen.test_size = 600;
  auto splits = data::make_synthetic_mnist(gen);

  nn::MlpConfig config;
  config.layer_sizes = {784, 300, 300, 10};
  config.learning_rate = 0.1f;
  nn::Mlp mlp(config, nn::MatmulBackend("fast444"), nn::MatmulBackend("classical"));
  ASSERT_TRUE(mlp.layer_uses_fast(1));

  Rng rng(4);
  double accuracy = 0;
  for (int epoch = 0; epoch < 9; ++epoch) {
    nn::train_epoch(mlp, splits.train, 300, &rng);
    accuracy = nn::evaluate_accuracy(mlp, splits.test);
  }
  EXPECT_GT(accuracy, 0.85) << "paper Fig 5 regime: training converges under APA error";
}

TEST(EndToEnd, ApaAndClassicalTrainingStayClose) {
  data::SyntheticMnistOptions gen;
  gen.train_size = 2400;
  gen.test_size = 600;
  auto train_a = data::make_synthetic_mnist(gen);
  auto train_b = data::make_synthetic_mnist(gen);

  nn::MlpConfig config;
  config.layer_sizes = {784, 300, 300, 10};
  config.learning_rate = 0.1f;
  nn::Mlp classical_mlp(config, nn::MatmulBackend("classical"),
                        nn::MatmulBackend("classical"));
  // apa664 has the worst error class in the catalog (phi = 2, ~5e-3): the
  // robustness claim in its hardest in-catalog configuration.
  nn::Mlp apa_mlp(config, nn::MatmulBackend("apa664"), nn::MatmulBackend("classical"));

  Rng rng_a(6), rng_b(6);
  for (int epoch = 0; epoch < 4; ++epoch) {
    nn::train_epoch(classical_mlp, train_a.train, 300, &rng_a);
    nn::train_epoch(apa_mlp, train_b.train, 300, &rng_b);
  }
  const double acc_classical = nn::evaluate_accuracy(classical_mlp, train_a.test);
  const double acc_apa = nn::evaluate_accuracy(apa_mlp, train_b.test);
  EXPECT_GT(acc_apa, acc_classical - 0.06)
      << "classical=" << acc_classical << " apa=" << acc_apa;
}

TEST(EndToEnd, MomentumTrainingConvergesFasterEarly) {
  data::SyntheticMnistOptions gen;
  gen.train_size = 1800;
  gen.test_size = 400;
  const auto make = [&](float momentum) {
    auto splits = data::make_synthetic_mnist(gen);
    nn::MlpConfig config;
    config.layer_sizes = {784, 128, 10};
    config.learning_rate = 0.02f;
    config.momentum = momentum;
    nn::Mlp mlp(config, nn::MatmulBackend("classical"), nn::MatmulBackend("classical"));
    Rng rng(8);
    nn::EpochStats stats{};
    for (int epoch = 0; epoch < 2; ++epoch) {
      stats = nn::train_epoch(mlp, splits.train, 100, &rng);
    }
    return stats.mean_loss;
  };
  EXPECT_LT(make(0.9f), make(0.0f));
}

TEST(EndToEnd, SerializedRuleDrivesFastMatmul) {
  // Export a registry rule, re-import it, and verify the loaded rule computes
  // the same product as the original through the full execution stack.
  std::stringstream ss;
  core::write_rule(ss, core::rule_by_name("apa422"));
  const core::Rule loaded = core::read_rule(ss);

  core::FastMatmul original("apa422");
  core::FastMatmul imported(loaded);
  Rng rng(10);
  Matrix<float> a(64, 64), b(64, 64), c1(64, 64), c2(64, 64);
  fill_random_uniform<float>(a.view(), rng);
  fill_random_uniform<float>(b.view(), rng);
  original.multiply(a.view().as_const(), b.view().as_const(), c1.view());
  imported.multiply(a.view().as_const(), b.view().as_const(), c2.view());
  EXPECT_EQ(max_abs_diff(c1.view(), c2.view()), 0.0);
}

TEST(EndToEnd, VggHeadTimingClassicalVsFastBothRun) {
  nn::VggFcConfig config;
  config.conv_features = 512;  // scaled-down head, same topology
  config.fc_width = 256;
  config.num_classes = 50;
  auto classical_head = nn::make_vgg_fc_head(config, nn::MatmulBackend("classical"),
                                             nn::MatmulBackend("classical"));
  auto fast_head = nn::make_vgg_fc_head(config, nn::MatmulBackend("fast442"),
                                        nn::MatmulBackend("classical"));
  EXPECT_GT(nn::time_vgg_fc_step(classical_head, 64, 1), 0.0);
  EXPECT_GT(nn::time_vgg_fc_step(fast_head, 64, 1), 0.0);
}

}  // namespace
}  // namespace apa
