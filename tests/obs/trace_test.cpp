// Tracing layer: span accumulation, per-thread ring recording under OpenMP,
// nesting discipline of the recorded events, phase deltas, and Chrome-trace
// export shape. Every test that depends on spans actually recording skips in
// APAMM_OBS=OFF builds (where the suite's job is just to compile).

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "obs/trace_export.h"

namespace {

using namespace apa;

/// Minimal structural JSON check: every brace/bracket closes in order and
/// quotes pair up (with \" escapes honored). Catches the classes of export
/// bugs a renderer would hit — trailing commas excepted, which the shape
/// checks below cover by parsing event fields directly.
bool balanced_json(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::set_tracing(true);
    obs::reset_trace();
    obs::reset_phases();
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::reset_trace();
    obs::reset_phases();
  }
};

std::uint64_t total_for(const std::vector<obs::PhaseTotal>& totals,
                        const std::string& name) {
  for (const auto& t : totals) {
    if (t.name == name) return t.count;
  }
  return 0;
}

TEST_F(TraceTest, SpansAccumulatePhaseTotals) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  for (int i = 0; i < 5; ++i) {
    APA_TRACE_SCOPE("test.outer");
    APA_TRACE_SCOPE("test.inner");
  }
  const auto totals = obs::phase_totals();
  EXPECT_EQ(total_for(totals, "test.outer"), 5u);
  EXPECT_EQ(total_for(totals, "test.inner"), 5u);
  // Sorted by name, as documented.
  EXPECT_TRUE(std::is_sorted(totals.begin(), totals.end(),
                             [](const auto& a, const auto& b) {
                               return a.name < b.name;
                             }));
}

TEST_F(TraceTest, PhaseDeltaSubtractsAndDropsZeroEntries) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  { APA_TRACE_SCOPE("test.delta_base"); }
  const auto before = obs::phase_totals();
  for (int i = 0; i < 3; ++i) {
    APA_TRACE_SCOPE("test.delta_hot");
  }
  const auto delta = obs::phase_delta(obs::phase_totals(), before);
  EXPECT_EQ(total_for(delta, "test.delta_hot"), 3u);
  // test.delta_base did not advance, so the delta must not mention it.
  for (const auto& t : delta) EXPECT_NE(t.name, "test.delta_base");
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  obs::set_enabled(false);
  { APA_TRACE_SCOPE("test.dormant"); }
  obs::set_enabled(true);
  EXPECT_EQ(total_for(obs::phase_totals(), "test.dormant"), 0u);
  EXPECT_TRUE(obs::trace_events().empty());
}

TEST_F(TraceTest, RecordsNestedSpansAcrossFourOmpThreads) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  constexpr int kThreads = 4;
  constexpr int kRepsPerThread = 8;
  omp_set_dynamic(0);
#pragma omp parallel num_threads(kThreads)
  {
    for (int r = 0; r < kRepsPerThread; ++r) {
      APA_TRACE_SCOPE("test.mt_outer");
      {
        APA_TRACE_SCOPE_ID("test.mt_inner", r);
      }
    }
  }
  const auto events = obs::trace_events();
  ASSERT_EQ(obs::trace_dropped(), 0u);

  // Every thread contributed its full complement of both span names.
  std::vector<int> tids;
  for (const auto& e : events) {
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end())
      tids.push_back(e.tid);
  }
  EXPECT_GE(tids.size(), static_cast<std::size_t>(kThreads));
  std::size_t outer = 0, inner = 0;
  for (const auto& e : events) {
    if (e.name == "test.mt_outer") ++outer;
    if (e.name == "test.mt_inner") {
      ++inner;
      EXPECT_GE(e.id, 0);
      EXPECT_LT(e.id, kRepsPerThread);
    }
  }
  EXPECT_EQ(outer, static_cast<std::size_t>(kThreads * kRepsPerThread));
  EXPECT_EQ(inner, static_cast<std::size_t>(kThreads * kRepsPerThread));

  // Nesting discipline per thread: events arrive ordered by (tid, start); a
  // stack replay must find every span either disjoint from or fully inside
  // the enclosing one — partial overlap means the ring interleaved scopes.
  for (const int tid : tids) {
    std::vector<const obs::TraceEventView*> stack;
    for (const auto& e : events) {
      if (e.tid != tid) continue;
      while (!stack.empty() &&
             stack.back()->start_ns + stack.back()->dur_ns <= e.start_ns) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        EXPECT_LE(e.start_ns + e.dur_ns,
                  stack.back()->start_ns + stack.back()->dur_ns)
            << "span " << e.name << " partially overlaps " << stack.back()->name;
      }
      stack.push_back(&e);
    }
  }
}

TEST_F(TraceTest, ChromeTraceExportIsBalancedJsonWithAllEvents) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  omp_set_dynamic(0);
#pragma omp parallel num_threads(4)
  {
    for (int r = 0; r < 4; ++r) {
      APA_TRACE_SCOPE("test.export_outer");
      APA_TRACE_SCOPE("test.export_inner");
    }
  }
  const std::string json = obs::chrome_trace_json();
  EXPECT_TRUE(balanced_json(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export_inner\""), std::string::npos);
  // One "X" duration event per recorded span (metadata events are "M").
  std::size_t duration_events = 0;
  for (std::size_t pos = json.find("\"ph\": \"X\""); pos != std::string::npos;
       pos = json.find("\"ph\": \"X\"", pos + 1)) {
    ++duration_events;
  }
  EXPECT_EQ(duration_events, obs::trace_events().size());
}

TEST_F(TraceTest, EmptyRecordingStillExportsValidDocument) {
  obs::reset_trace();
  const std::string json = obs::chrome_trace_json();
  EXPECT_TRUE(balanced_json(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST_F(TraceTest, TraceCapBoundsRingRetention) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  const std::uint64_t original = obs::trace_capacity();
  obs::set_trace_capacity(16);
  EXPECT_EQ(obs::trace_capacity(), 16u);
  for (int i = 0; i < 50; ++i) {
    APA_TRACE_SCOPE_ID("test.capped", i);
  }
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(obs::trace_dropped(), 34u);
  // Oldest-first drop: only the newest 16 spans survive, in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].name, "test.capped");
    EXPECT_EQ(events[i].id, static_cast<std::int64_t>(34 + i));
  }
  obs::set_trace_capacity(original);
}

TEST_F(TraceTest, TraceCapClampsToOneAndResizeEmptiesRings) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  const std::uint64_t original = obs::trace_capacity();
  { APA_TRACE_SCOPE("test.pre_resize"); }
  ASSERT_FALSE(obs::trace_events().empty());
  obs::set_trace_capacity(0);  // clamps to 1
  EXPECT_EQ(obs::trace_capacity(), 1u);
  // The resize empties every ring (quiescent contract), so nothing survives.
  EXPECT_TRUE(obs::trace_events().empty());
  { APA_TRACE_SCOPE("test.post_resize"); }
  EXPECT_EQ(obs::trace_events().size(), 1u);
  obs::set_trace_capacity(original);
}

TEST_F(TraceTest, ResetTraceDiscardsEvents) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  { APA_TRACE_SCOPE("test.resettable"); }
  ASSERT_FALSE(obs::trace_events().empty());
  obs::reset_trace();
  EXPECT_TRUE(obs::trace_events().empty());
  EXPECT_EQ(obs::trace_dropped(), 0u);
}

}  // namespace
