// Numerical-health monitor: the EWMA/slope drift detector over guard residual
// ratios. The paper-level property under test: a λ-error stream that grows
// toward the σ/φ-derived bound is flagged while every individual ratio is
// still strictly below 1 — i.e. the monitor warns BEFORE the guard would trip
// (docs/OBSERVABILITY.md §Numerical health). Skips under APAMM_OBS=OFF.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/health.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace {

using namespace apa;
namespace fs = std::filesystem;

constexpr double kBound = 3.45e-4;  // bini322's 1-step catalog bound, roughly

class HealthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  }
};

/// Feeds a geometric residual ramp (the signature of accumulating λ-error),
/// saturating at `cap` < 1, until the monitor flags. Returns the fed ratios so
/// the test can assert every one stayed below the trip point.
std::vector<double> feed_ramp(obs::HealthMonitor& mon, double start,
                              double growth, double cap) {
  std::vector<double> fed;
  double ratio = start;
  for (int i = 0; i < 200; ++i) {
    mon.record("bini322", 300, 784, 300, ratio, kBound);
    fed.push_back(ratio);
    if (mon.drifting(300, 784, 300)) break;
    ratio = std::min(ratio * growth, cap);
  }
  return fed;
}

TEST_F(HealthTest, FlagsInjectedDriftBeforeAnyRatioReachesTheTripPoint) {
  obs::HealthMonitor mon;
  const std::vector<double> fed = feed_ramp(mon, 0.05, 1.2, 0.95);
  EXPECT_TRUE(mon.drifting(300, 784, 300))
      << "ramp to " << fed.back() << " never flagged";
  // The guard trips at ratio > 1; every sample the monitor saw was below it.
  EXPECT_LT(*std::max_element(fed.begin(), fed.end()), 1.0);

  const auto streams = mon.snapshot();
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].algo, "bini322");
  EXPECT_TRUE(streams[0].drifting);
  EXPECT_GT(streams[0].flagged_at, 0u);
  EXPECT_LE(streams[0].flagged_at, streams[0].samples);
  EXPECT_LT(streams[0].ewma_ratio, 1.0);
  EXPECT_DOUBLE_EQ(streams[0].bound, kBound);
  EXPECT_EQ(mon.drifting_count(), 1u);
}

TEST_F(HealthTest, SlopeAloneFlagsASlowRampBelowTheLevelThreshold) {
  // Disable the level trigger: only sustained growth can flag. A linear creep
  // from 0.05 upward has a positive EWMA slope well before it nears 0.5.
  obs::HealthOptions options;
  options.warn_ratio = 10.0;  // unreachable
  options.slope_warn = 0.005;
  options.slope_floor = 0.06;
  obs::HealthMonitor mon(options);
  double ratio = 0.05;
  bool flagged = false;
  for (int i = 0; i < 100 && !flagged; ++i) {
    mon.record("apa422", 64, 64, 64, ratio, kBound);
    flagged = mon.drifting(64, 64, 64);
    ratio += 0.01;
  }
  EXPECT_TRUE(flagged);
  EXPECT_LT(ratio, 0.5) << "slope trigger should fire long before the level";
}

TEST_F(HealthTest, StableStreamNeverFlags) {
  obs::HealthMonitor mon;
  for (int i = 0; i < 100; ++i) {
    mon.record("bini322", 128, 128, 128, 0.3, kBound);
  }
  EXPECT_FALSE(mon.drifting(128, 128, 128));
  EXPECT_EQ(mon.drifting_count(), 0u);
  const auto streams = mon.snapshot();
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].flagged_at, 0u);
  EXPECT_NEAR(streams[0].ewma_ratio, 0.3, 1e-9);
}

TEST_F(HealthTest, RecoveryClearsTheFlagButKeepsTheHistory) {
  obs::HealthMonitor mon;
  feed_ramp(mon, 0.05, 1.2, 0.95);
  ASSERT_TRUE(mon.drifting(300, 784, 300));
  for (int i = 0; i < 60; ++i) {
    mon.record("bini322", 300, 784, 300, 0.01, kBound);
  }
  EXPECT_FALSE(mon.drifting(300, 784, 300));
  EXPECT_EQ(mon.drifting_count(), 0u);
  const auto streams = mon.snapshot();
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_GT(streams[0].flagged_at, 0u);  // the episode stays on record
  EXPECT_GT(streams[0].peak_ratio, 0.5);
}

TEST_F(HealthTest, StreamsAreIsolatedByAlgoAndShape) {
  obs::HealthMonitor mon;
  feed_ramp(mon, 0.05, 1.2, 0.95);  // drifts ⟨bini322, 300, 784, 300⟩
  for (int i = 0; i < 20; ++i) {
    mon.record("bini322", 64, 64, 64, 0.1, kBound);
  }
  EXPECT_TRUE(mon.drifting(300, 784, 300));
  EXPECT_FALSE(mon.drifting(64, 64, 64));
  EXPECT_FALSE(mon.drifting(1, 2, 3));  // never-seen shape
  // Snapshot is sorted by (algo, m, k, n).
  const auto streams = mon.snapshot();
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0].m, 64);
  EXPECT_EQ(streams[1].m, 300);
}

TEST_F(HealthTest, EmitsTelemetryOnFlipsAndOnTheSampleCadence) {
  const fs::path path =
      fs::temp_directory_path() /
      ("apamm_health_test_" + std::to_string(::getpid()) + ".jsonl");
  {
    obs::TelemetrySink sink(path.string());
    ASSERT_TRUE(sink.ok());
    obs::HealthOptions options;
    options.emit_every = 4;
    obs::HealthMonitor mon(options);
    mon.attach(&sink);
    feed_ramp(mon, 0.05, 1.2, 0.95);
    for (int i = 0; i < 60; ++i) {
      mon.record("bini322", 300, 784, 300, 0.01, kBound);
    }
    mon.attach(nullptr);
  }
  std::ifstream in(path);
  std::string line;
  int health_lines = 0, drift_lines = 0, clear_lines = 0, sample_lines = 0;
  while (std::getline(in, line)) {
    if (line.find("\"type\": \"health\"") == std::string::npos) continue;
    ++health_lines;
    EXPECT_NE(line.find("\"algo\": \"bini322\""), std::string::npos);
    EXPECT_NE(line.find("\"ewma\""), std::string::npos);
    EXPECT_NE(line.find("\"bound\""), std::string::npos);
    if (line.find("\"event\": \"drift\"") != std::string::npos) ++drift_lines;
    if (line.find("\"event\": \"clear\"") != std::string::npos) ++clear_lines;
    if (line.find("\"event\": \"sample\"") != std::string::npos)
      ++sample_lines;
  }
  EXPECT_EQ(drift_lines, 1);
  EXPECT_EQ(clear_lines, 1);
  EXPECT_GE(sample_lines, 10);  // 60 recovery samples / emit_every=4, minus flips
  EXPECT_EQ(health_lines, drift_lines + clear_lines + sample_lines);
  fs::remove(path);
}

TEST_F(HealthTest, ResetForgetsEverything) {
  obs::HealthMonitor mon;
  feed_ramp(mon, 0.05, 1.2, 0.95);
  ASSERT_TRUE(mon.drifting(300, 784, 300));
  mon.reset();
  EXPECT_FALSE(mon.drifting(300, 784, 300));
  EXPECT_EQ(mon.drifting_count(), 0u);
  EXPECT_TRUE(mon.snapshot().empty());
}

TEST_F(HealthTest, GlobalMonitorIsAStableSingleton) {
  EXPECT_EQ(&obs::health(), &obs::health());
}

}  // namespace
