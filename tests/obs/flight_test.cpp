// Flight recorder: per-thread black-box rings, the span mirror, ring bounds,
// and the postmortem dump files (schema, arming, coalescing). The dump path
// itself is async-signal-safe by construction; here we drive it from normal
// code and validate what lands on disk. Skips (but still compiles) under
// APAMM_OBS=OFF, where every entry point is a no-op.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.h"
#include "obs/trace.h"

namespace {

using namespace apa;
namespace fs = std::filesystem;

/// Structural JSON check (braces/brackets/quotes pair up) — the dump writer is
/// hand-rolled for signal safety, so malformed output is a real failure mode.
bool balanced_json(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

fs::path make_temp_dir(const char* stem) {
  const fs::path dir =
      fs::temp_directory_path() /
      (std::string(stem) + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::set_flight_enabled(true);
    obs::set_flight_dir("");  // disarm: no test dumps unless it opts in
    obs::reset_flight();
  }
  void TearDown() override {
    obs::set_flight_dir("");
    obs::set_flight_enabled(true);
    obs::reset_flight();
  }
};

int count_tag(const std::vector<obs::FlightEventView>& events,
              const std::string& tag) {
  int n = 0;
  for (const auto& e : events) {
    if (e.tag == tag) ++n;
  }
  return n;
}

TEST_F(FlightTest, NoteRecordsTagAndPayload) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  obs::flight_note("test.note", 7, -9);
  const auto events = obs::flight_events();
  bool found = false;
  for (const auto& e : events) {
    if (e.tag != "test.note") continue;
    found = true;
    EXPECT_FALSE(e.is_span);
    EXPECT_EQ(e.a, 7);
    EXPECT_EQ(e.b, -9);
    EXPECT_GT(e.t_ns, 0u);
  }
  EXPECT_TRUE(found);
}

TEST_F(FlightTest, FinishedSpansMirrorIntoTheRing) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  {
    APA_TRACE_SCOPE_ID("test.flight_mirror", 3);
  }
  bool found = false;
  for (const auto& e : obs::flight_events()) {
    if (e.tag != "test.flight_mirror") continue;
    found = true;
    EXPECT_TRUE(e.is_span);
    EXPECT_EQ(e.a, 3);     // span id
    EXPECT_GE(e.b, 0);     // duration
  }
  EXPECT_TRUE(found) << "span did not mirror into the flight ring";
}

TEST_F(FlightTest, DisablingTheMirrorKeepsExplicitNotes) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  obs::set_flight_enabled(false);
  EXPECT_FALSE(obs::flight_enabled());
  {
    APA_TRACE_SCOPE("test.flight_muted");
  }
  obs::flight_note("test.flight_note_anyway", 1);
  const auto events = obs::flight_events();
  EXPECT_EQ(count_tag(events, "test.flight_muted"), 0);
  EXPECT_EQ(count_tag(events, "test.flight_note_anyway"), 1);
}

TEST_F(FlightTest, RingBoundKeepsOnlyTheNewestEvents) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  // Capacity applies to rings allocated after the call, so record from a
  // fresh thread whose ring is born with the small bound.
  const std::uint64_t original = obs::flight_capacity();
  obs::set_flight_capacity(8);
  EXPECT_EQ(obs::flight_capacity(), 8u);
  std::thread recorder([] {
    for (int i = 0; i < 20; ++i) {
      obs::flight_note("test.flight_cap", i);
    }
  });
  recorder.join();
  std::vector<std::int64_t> seen;
  for (const auto& e : obs::flight_events()) {
    if (e.tag == "test.flight_cap") seen.push_back(e.a);
  }
  ASSERT_EQ(seen.size(), 8u);
  // Oldest-first overwrite: only notes 12..19 survive, in order.
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<std::int64_t>(12 + i));
  }
  obs::set_flight_capacity(original);
}

TEST_F(FlightTest, CapacityClampsToOne) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  const std::uint64_t original = obs::flight_capacity();
  obs::set_flight_capacity(0);
  EXPECT_EQ(obs::flight_capacity(), 1u);
  obs::set_flight_capacity(original);
}

TEST_F(FlightTest, DumpIsDisarmedUntilADirectoryIsNamed) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  obs::flight_note("test.flight_disarmed", 1);
  EXPECT_EQ(obs::flight_dump("never"), 0);
  EXPECT_EQ(obs::flight_dir(), "");
}

TEST_F(FlightTest, OverlongDirectoryLeavesDumpsDisarmed) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  obs::set_flight_dir(std::string(600, 'x'));  // exceeds the signal-safe buffer
  EXPECT_EQ(obs::flight_dir(), "");
  EXPECT_EQ(obs::flight_dump("overlong"), 0);
}

TEST_F(FlightTest, DumpWritesBalancedPerRankJsonWithReasonAndEvents) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  const fs::path dir = make_temp_dir("apamm_flight_test_");
  obs::set_flight_dir(dir.string());
  EXPECT_EQ(obs::flight_dir(), dir.string());
  obs::flight_note("test.flight_dump", 42, 99);
  const int files = obs::flight_dump("unit_test");
  EXPECT_GE(files, 1);

  // The main thread never declared a rank, so it dumps as rank 0.
  const fs::path dump = dir / "flight_0.json";
  ASSERT_TRUE(fs::exists(dump));
  const std::string text = slurp(dump);
  EXPECT_TRUE(balanced_json(text)) << text.substr(0, 400);
  EXPECT_NE(text.find("\"reason\":\"unit_test\""), std::string::npos);
  EXPECT_NE(text.find("\"rank\":0"), std::string::npos);
  EXPECT_NE(text.find("\"tag\":\"test.flight_dump\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"note\",\"a\":42,\"b\":99"),
            std::string::npos);

  // Disarming stops further dumps.
  obs::set_flight_dir("");
  EXPECT_EQ(obs::flight_dump("after_disarm"), 0);
  fs::remove_all(dir);
}

TEST_F(FlightTest, ResetEmptiesEveryRing) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  obs::flight_note("test.flight_reset", 1);
  ASSERT_GE(count_tag(obs::flight_events(), "test.flight_reset"), 1);
  obs::reset_flight();
  EXPECT_EQ(count_tag(obs::flight_events(), "test.flight_reset"), 0);
}

TEST_F(FlightTest, CompiledOutBuildStaysCallable) {
  // The OFF stubs must accept every call without effect; in ON builds this
  // just exercises the getters.
  if (obs::kCompiledIn) {
    EXPECT_GT(obs::flight_capacity(), 0u);
    return;
  }
  obs::flight_note("test.off", 1, 2);
  EXPECT_EQ(obs::flight_dump("off"), 0);
  EXPECT_TRUE(obs::flight_events().empty());
  EXPECT_FALSE(obs::flight_enabled());
  EXPECT_EQ(obs::flight_capacity(), 0u);
}

}  // namespace
