// ObsSession wiring: rank-suffixed output paths and the S1 regression — a
// multi-rank session must give every rank its own trace and metrics file so
// N workers never interleave on one JSONL stream or clobber one trace.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/session.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace {

using namespace apa;
namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

fs::path make_temp_dir(const char* stem) {
  const fs::path dir =
      fs::temp_directory_path() /
      (std::string(stem) + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

bool balanced_json(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST(RankSuffixedPath, InsertsBeforeTheExtension) {
  EXPECT_EQ(obs::rank_suffixed_path("trace.json", 2), "trace.rank2.json");
  EXPECT_EQ(obs::rank_suffixed_path("out/metrics.jsonl", 0),
            "out/metrics.rank0.jsonl");
  EXPECT_EQ(obs::rank_suffixed_path("archive.tar.gz", 1),
            "archive.tar.rank1.gz");
}

TEST(RankSuffixedPath, AppendsWhenThereIsNoExtension) {
  EXPECT_EQ(obs::rank_suffixed_path("trace", 3), "trace.rank3");
  // The dot in a directory component is not an extension.
  EXPECT_EQ(obs::rank_suffixed_path("run.v2/trace", 1), "run.v2/trace.rank1");
}

TEST(RankSuffixedPath, NegativeRankAndEmptyPathPassThrough) {
  EXPECT_EQ(obs::rank_suffixed_path("trace.json", -1), "trace.json");
  EXPECT_EQ(obs::rank_suffixed_path("", 2), "");
}

TEST(ObsSession, EmptyOptionsProduceNoSinksAndFlushIsIdempotent) {
  obs::ObsSession session(obs::ObsSessionOptions{});
  EXPECT_EQ(session.telemetry(), nullptr);
  EXPECT_EQ(session.rank_telemetry(0), nullptr);
  session.flush();
  session.flush();
}

TEST(ObsSession, SingleRankSessionKeepsPlainPaths) {
  const fs::path dir = make_temp_dir("apamm_session_single_");
  obs::ObsSessionOptions options;
  options.metrics_path = (dir / "metrics.jsonl").string();
  {
    obs::ObsSession session(options);
    ASSERT_NE(session.telemetry(), nullptr);
    EXPECT_EQ(session.telemetry(), session.rank_telemetry(0));
    obs::JsonRecord record;
    record.set("marker", "single-rank");
    session.telemetry()->write(record);
  }
  EXPECT_TRUE(fs::exists(dir / "metrics.jsonl"));
  EXPECT_FALSE(fs::exists(dir / "metrics.rank0.jsonl"));
  EXPECT_NE(slurp(dir / "metrics.jsonl").find("single-rank"),
            std::string::npos);
  fs::remove_all(dir);
}

// S1 regression: with ranks > 1 every rank writes its own suffixed metrics
// file and flush() emits one rank-filtered trace per rank — nothing lands on
// the un-suffixed paths, and records never cross streams.
TEST(ObsSession, MultiRankSessionWritesDisjointPerRankFiles) {
  const fs::path dir = make_temp_dir("apamm_session_multi_");
  obs::ObsSessionOptions options;
  options.trace_path = (dir / "trace.json").string();
  options.metrics_path = (dir / "metrics.jsonl").string();
  options.ranks = 2;
  {
    obs::ObsSession session(options);
    ASSERT_NE(session.rank_telemetry(0), nullptr);
    ASSERT_NE(session.rank_telemetry(1), nullptr);
    EXPECT_NE(session.rank_telemetry(0), session.rank_telemetry(1));
    // telemetry() is the coordinator's sink; out-of-range ranks clamp.
    EXPECT_EQ(session.telemetry(), session.rank_telemetry(0));
    EXPECT_EQ(session.rank_telemetry(7), session.rank_telemetry(1));
    EXPECT_EQ(session.rank_telemetry(-3), session.rank_telemetry(0));
    obs::JsonRecord r0, r1;
    r0.set("marker", "from-rank-zero");
    r1.set("marker", "from-rank-one");
    session.rank_telemetry(0)->write(r0);
    session.rank_telemetry(1)->write(r1);
    {
      APA_TRACE_SCOPE("test.session_span");
    }
  }
  EXPECT_FALSE(fs::exists(dir / "metrics.jsonl"));
  EXPECT_FALSE(fs::exists(dir / "trace.json"));
  const std::string rank0 = slurp(dir / "metrics.rank0.jsonl");
  const std::string rank1 = slurp(dir / "metrics.rank1.jsonl");
  EXPECT_NE(rank0.find("from-rank-zero"), std::string::npos);
  EXPECT_EQ(rank0.find("from-rank-one"), std::string::npos);
  EXPECT_NE(rank1.find("from-rank-one"), std::string::npos);
  EXPECT_EQ(rank1.find("from-rank-zero"), std::string::npos);
  // The final counters record lands on the coordinator's stream only.
  EXPECT_NE(rank0.find("\"counters\""), std::string::npos);
  EXPECT_EQ(rank1.find("\"counters\""), std::string::npos);

  for (int rank = 0; rank < 2; ++rank) {
    const fs::path trace =
        dir / ("trace.rank" + std::to_string(rank) + ".json");
    ASSERT_TRUE(fs::exists(trace)) << trace;
    const std::string text = slurp(trace);
    EXPECT_TRUE(balanced_json(text)) << text.substr(0, 400);
    EXPECT_NE(text.find("\"clockSync\""), std::string::npos);
    EXPECT_NE(text.find("apamm rank " + std::to_string(rank)),
              std::string::npos);
  }
  if (obs::kCompiledIn) {
    // Unranked threads (this test's main thread) export with rank 0.
    EXPECT_NE(slurp(dir / "trace.rank0.json").find("test.session_span"),
              std::string::npos);
    EXPECT_EQ(slurp(dir / "trace.rank1.json").find("test.session_span"),
              std::string::npos);
  }
  fs::remove_all(dir);
}

}  // namespace
