// Telemetry JSONL sink and JsonRecord builder: round-trip through a real file,
// escaping, non-finite handling, counters_record shape. The sink is explicit
// API and stays functional in APAMM_OBS=OFF builds, so only the counter-content
// assertions skip there.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace {

using namespace apa;

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

/// Extracts the raw JSON value following `"key":` on one JSONL line, up to the
/// next comma-or-brace at the line's top nesting level.
std::string field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return "";
  std::size_t start = pos + needle.size();
  while (start < line.size() && line[start] == ' ') ++start;
  int depth = 0;
  bool in_string = false;
  std::size_t end = start;
  for (; end < line.size(); ++end) {
    const char c = line[end];
    if (in_string) {
      if (c == '\\') ++end;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (depth == 0) break;
      --depth;
    } else if (c == ',' && depth == 0) {
      break;
    }
  }
  return line.substr(start, end - start);
}

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test file: ctest runs each test as its own process, so a shared
    // name would let concurrent tests stomp each other's stream.
    path_ = (std::filesystem::temp_directory_path() /
             ("apamm_telemetry_test_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name()) +
              ".jsonl"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(TelemetryTest, RecordsRoundTripThroughJsonl) {
  {
    obs::TelemetrySink sink(path_);
    ASSERT_TRUE(sink.ok());
    EXPECT_EQ(sink.path(), path_);

    obs::JsonRecord first;
    first.set("type", "epoch").set("epoch", 1).set("loss", 0.25).set("guarded", true);
    sink.write(first);

    obs::JsonRecord second;
    second.set("type", "step")
        .set("step", 17L)
        .set("note", std::string_view("quote\" and \\ and\nnewline"))
        .set_raw("nested", "{\"a\":1,\"b\":2}");
    sink.write(second);
  }

  const auto lines = read_lines(path_);
  ASSERT_EQ(lines.size(), 2u);

  EXPECT_EQ(lines[0],
            "{\"type\": \"epoch\", \"epoch\": 1, \"loss\": 0.25, \"guarded\": true}");
  EXPECT_EQ(field(lines[1], "type"), "\"step\"");
  EXPECT_EQ(field(lines[1], "step"), "17");
  EXPECT_EQ(field(lines[1], "note"), "\"quote\\\" and \\\\ and\\nnewline\"");
  EXPECT_EQ(field(lines[1], "nested"), "{\"a\":1,\"b\":2}");
}

TEST_F(TelemetryTest, FlushPerLineSurvivesEarlyReads) {
  obs::TelemetrySink sink(path_);
  ASSERT_TRUE(sink.ok());
  obs::JsonRecord rec;
  rec.set("type", "step").set("step", 0);
  sink.write(rec);
  // The sink flushes per write, so the line is on disk before destruction.
  const auto lines = read_lines(path_);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(field(lines[0], "step"), "0");
}

TEST_F(TelemetryTest, FailedSinkDropsWritesSilently) {
  obs::TelemetrySink sink("/nonexistent-dir/apamm/telemetry.jsonl");
  EXPECT_FALSE(sink.ok());
  obs::JsonRecord rec;
  rec.set("type", "step");
  sink.write(rec);  // must not crash
}

TEST_F(TelemetryTest, NonFiniteDoublesRenderAsNull) {
  obs::JsonRecord rec;
  rec.set("nan", std::nan(""))
      .set("inf", HUGE_VAL)
      .set("neg_inf", -HUGE_VAL)
      .set("finite", 1.5);
  EXPECT_EQ(rec.to_json(),
            "{\"nan\": null, \"inf\": null, \"neg_inf\": null, \"finite\": 1.5}");
}

TEST_F(TelemetryTest, SyncKeepsSinkWritable) {
  obs::TelemetrySink sink(path_);
  ASSERT_TRUE(sink.ok());
  obs::JsonRecord rec;
  rec.set("type", "step").set("step", 0);
  sink.write(rec);
  sink.sync();  // explicit durability point mid-run
  ASSERT_EQ(read_lines(path_).size(), 1u);
  rec.set("step", 1);
  sink.write(rec);
  sink.sync();
  EXPECT_EQ(read_lines(path_).size(), 2u);
}

TEST_F(TelemetryTest, CrashFlushTracksOpenSinks) {
  obs::install_telemetry_crash_flush();  // idempotent; first call wins
  const int before = obs::telemetry_crash_flush_registered();
  {
    obs::TelemetrySink sink(path_);
    ASSERT_TRUE(sink.ok());
    EXPECT_EQ(obs::telemetry_crash_flush_registered(), before + 1);
    obs::JsonRecord rec;
    rec.set("type", "step");
    sink.write(rec);
  }
  // Closed sinks leave the fd table so the signal handler never touches a
  // dead descriptor.
  EXPECT_EQ(obs::telemetry_crash_flush_registered(), before);
}

TEST_F(TelemetryTest, CrashFlushIgnoresFailedSinks) {
  obs::install_telemetry_crash_flush();
  const int before = obs::telemetry_crash_flush_registered();
  obs::TelemetrySink sink("/nonexistent-dir/apamm/telemetry.jsonl");
  EXPECT_FALSE(sink.ok());
  EXPECT_EQ(obs::telemetry_crash_flush_registered(), before);
}

// Regression for the destructor race found while annotating the sink for
// thread-safety analysis: ~TelemetrySink used to flush and fclose the stream
// without taking the mutex write()/sync() hold, so a write racing the final
// flush could touch a closed FILE*. The whole lifecycle is now serialized on
// one lock; this hammer asserts the observable contract — every line written
// by any thread lands on disk exactly once, complete, with the final flush
// covering all of them. Meaningful under TSan, still a real check without it.
TEST_F(TelemetryTest, ConcurrentWritersSyncAndDestructionKeepEveryLine) {
  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 64;
  {
    obs::TelemetrySink sink(path_);
    ASSERT_TRUE(sink.ok());
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&sink, t] {
        for (int i = 0; i < kWritesPerThread; ++i) {
          obs::JsonRecord rec;
          rec.set("type", "stress").set("thread", t).set("seq", i);
          sink.write(rec);
          if (i % 16 == 0) sink.sync();
        }
      });
    }
    for (std::thread& w : writers) w.join();
  }  // destruction is the final durability point

  const auto lines = read_lines(path_);
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads) * kWritesPerThread);
  std::vector<std::vector<bool>> seen(kThreads,
                                      std::vector<bool>(kWritesPerThread));
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');  // no torn/interleaved records
    EXPECT_EQ(line.back(), '}');
    const int t = std::stoi(field(line, "thread"));
    const int i = std::stoi(field(line, "seq"));
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, kWritesPerThread);
    EXPECT_FALSE(seen[t][i]) << "duplicate line t=" << t << " seq=" << i;
    seen[t][i] = true;
  }
}

TEST_F(TelemetryTest, EmptyRecordIsEmptyObject) {
  EXPECT_EQ(obs::JsonRecord().to_json(), "{}");
}

TEST_F(TelemetryTest, CountersRecordEmbedsRegistry) {
  obs::set_enabled(true);
  obs::reset_counters();
  const obs::JsonRecord empty_free = obs::counters_record();
  const std::string base = empty_free.to_json();
  EXPECT_NE(base.find("\"type\": \"counters\""), std::string::npos);
  EXPECT_NE(base.find("\"counters\""), std::string::npos);

  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  APA_COUNTER_ADD("test.telemetry.counter", 9);
  const std::string with = obs::counters_record().to_json();
  EXPECT_NE(with.find("\"test.telemetry.counter\": 9"), std::string::npos);
  obs::reset_counters();
}

}  // namespace
