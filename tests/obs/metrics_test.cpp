// Counter/histogram registry: interning, concurrent increments from OpenMP
// threads, reset semantics, and snapshot ordering. Skips the recording
// assertions in APAMM_OBS=OFF builds.

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace apa;

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset_counters();
  }
  void TearDown() override { obs::reset_counters(); }
};

TEST_F(MetricsTest, CounterAddAndSnapshot) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  APA_COUNTER_INC("test.metrics.basic");
  APA_COUNTER_ADD("test.metrics.basic", 41);
  EXPECT_EQ(obs::counter_value("test.metrics.basic"), 42u);

  const auto samples = obs::counter_samples();
  const auto it = std::find_if(samples.begin(), samples.end(), [](const auto& s) {
    return s.name == "test.metrics.basic";
  });
  ASSERT_NE(it, samples.end());
  EXPECT_EQ(it->value, 42u);
  EXPECT_TRUE(std::is_sorted(samples.begin(), samples.end(),
                             [](const auto& a, const auto& b) {
                               return a.name < b.name;
                             }));
}

TEST_F(MetricsTest, UnknownCounterReadsZero) {
  EXPECT_EQ(obs::counter_value("test.metrics.never_interned"), 0u);
}

TEST_F(MetricsTest, ConcurrentIncrementsSurviveExactly) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  omp_set_dynamic(0);
#pragma omp parallel num_threads(kThreads)
  {
    for (int i = 0; i < kPerThread; ++i) {
      APA_COUNTER_INC("test.metrics.concurrent");
    }
  }
  EXPECT_EQ(obs::counter_value("test.metrics.concurrent"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, ResetZeroesValuesButKeepsNames) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  APA_COUNTER_ADD("test.metrics.resettable", 7);
  ASSERT_EQ(obs::counter_value("test.metrics.resettable"), 7u);
  obs::reset_counters();
  EXPECT_EQ(obs::counter_value("test.metrics.resettable"), 0u);
  // The name stays interned: it must still appear in the snapshot at zero.
  const auto samples = obs::counter_samples();
  const bool present = std::any_of(samples.begin(), samples.end(), [](const auto& s) {
    return s.name == "test.metrics.resettable";
  });
  EXPECT_TRUE(present);
}

TEST_F(MetricsTest, DisabledCountersDoNotAdvance) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  obs::set_enabled(false);
  APA_COUNTER_INC("test.metrics.gated");
  obs::set_enabled(true);
  EXPECT_EQ(obs::counter_value("test.metrics.gated"), 0u);
}

TEST_F(MetricsTest, HistogramBucketsByBitWidth) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  APA_HISTOGRAM_RECORD("test.metrics.hist", 0);    // bucket 0
  APA_HISTOGRAM_RECORD("test.metrics.hist", 1);    // bucket 1
  APA_HISTOGRAM_RECORD("test.metrics.hist", 5);    // bucket 3: [4, 7]
  APA_HISTOGRAM_RECORD("test.metrics.hist", 255);  // bucket 8: [128, 255]
  const auto hists = obs::histogram_samples();
  const auto it = std::find_if(hists.begin(), hists.end(), [](const auto& h) {
    return h.name == "test.metrics.hist";
  });
  ASSERT_NE(it, hists.end());
  EXPECT_EQ(it->count, 4u);
  EXPECT_EQ(it->sum, 261u);
  ASSERT_GE(it->buckets.size(), 9u);
  EXPECT_EQ(it->buckets[0], 1u);
  EXPECT_EQ(it->buckets[1], 1u);
  EXPECT_EQ(it->buckets[3], 1u);
  EXPECT_EQ(it->buckets[8], 1u);
}

TEST_F(MetricsTest, ConcurrentHistogramRecordsAreLossless) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  omp_set_dynamic(0);
#pragma omp parallel num_threads(kThreads)
  {
    for (int i = 0; i < kPerThread; ++i) {
      APA_HISTOGRAM_RECORD("test.metrics.hist_mt", 3);
    }
  }
  const auto hists = obs::histogram_samples();
  const auto it = std::find_if(hists.begin(), hists.end(), [](const auto& h) {
    return h.name == "test.metrics.hist_mt";
  });
  ASSERT_NE(it, hists.end());
  const auto expected = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(it->count, expected);
  EXPECT_EQ(it->sum, expected * 3);
  ASSERT_GE(it->buckets.size(), 3u);
  EXPECT_EQ(it->buckets[2], expected);  // 3 has bit width 2
}

}  // namespace
