// Live metrics exposition: Prometheus text rendering of the counter/
// histogram/phase registries, snapshot-spec parsing, and the MetricsPublisher
// (atomic tmp+rename publish, periodic republish, final publish on stop).

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace {

using namespace apa;
namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

fs::path temp_file(const char* stem) {
  return fs::temp_directory_path() /
         (std::string(stem) + std::to_string(::getpid()) + ".prom");
}

TEST(SnapshotSpec, SplitsOnTheLastColon) {
  std::string path;
  double period = 0.0;
  ASSERT_TRUE(obs::parse_snapshot_spec("metrics.prom:2.5", &path, &period));
  EXPECT_EQ(path, "metrics.prom");
  EXPECT_DOUBLE_EQ(period, 2.5);

  // Paths may contain colons; only the last one can carry the period.
  ASSERT_TRUE(obs::parse_snapshot_spec("dir:v2/metrics.prom:3", &path, &period));
  EXPECT_EQ(path, "dir:v2/metrics.prom");
  EXPECT_DOUBLE_EQ(period, 3.0);
}

TEST(SnapshotSpec, MissingOrUnparsablePeriodDefaultsToOneSecond) {
  std::string path;
  double period = 0.0;
  ASSERT_TRUE(obs::parse_snapshot_spec("metrics.prom", &path, &period));
  EXPECT_EQ(path, "metrics.prom");
  EXPECT_DOUBLE_EQ(period, 1.0);

  // A non-numeric tail is part of the path, not a period.
  ASSERT_TRUE(obs::parse_snapshot_spec("metrics:prom", &path, &period));
  EXPECT_EQ(path, "metrics:prom");
  EXPECT_DOUBLE_EQ(period, 1.0);

  // Zero/negative periods are rejected the same way.
  ASSERT_TRUE(obs::parse_snapshot_spec("metrics.prom:0", &path, &period));
  EXPECT_EQ(path, "metrics.prom:0");
  EXPECT_DOUBLE_EQ(period, 1.0);
}

TEST(SnapshotSpec, EmptyPathFails) {
  std::string path;
  double period = 0.0;
  EXPECT_FALSE(obs::parse_snapshot_spec("", &path, &period));
}

TEST(PrometheusText, RendersCountersHistogramsAndPhases) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  obs::set_enabled(true);
  obs::reset_counters();
  obs::reset_phases();
  APA_COUNTER_INC("test.prom_counter");
  APA_COUNTER_INC("test.prom_counter");
  APA_HISTOGRAM_RECORD("test.prom_hist", 5);
  {
    APA_TRACE_SCOPE("test.prom_phase");
  }
  const std::string text = obs::prometheus_text();
  EXPECT_NE(text.find("# HELP apamm_counter_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE apamm_counter_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("apamm_counter_total{name=\"test.prom_counter\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("apamm_histogram_count{name=\"test.prom_hist\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("apamm_phase_count_total{phase=\"test.prom_phase\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("apamm_phase_seconds_total{phase=\"test.prom_phase\"}"),
            std::string::npos);
  // Every line is a comment or `metric[{labels}] value` — no blank torso.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(line[0] == '#' || line.find(' ') != std::string::npos) << line;
  }
  obs::reset_counters();
  obs::reset_phases();
}

TEST(PrometheusText, CompiledOutBuildRendersHeadersOnly) {
  if (obs::kCompiledIn) GTEST_SKIP() << "covered above";
  const std::string text = obs::prometheus_text();
  EXPECT_NE(text.find("# HELP"), std::string::npos);
  EXPECT_EQ(text.find("{name="), std::string::npos);
}

TEST(MetricsPublisher, PublishNowWritesTheFileAtomically) {
  const fs::path path = temp_file("apamm_snapshot_test_");
  fs::remove(path);
  {
    obs::MetricsPublisher publisher(path.string(), 3600.0);
    EXPECT_EQ(publisher.path(), path.string());
    EXPECT_TRUE(publisher.publish_now());
    ASSERT_TRUE(fs::exists(path));
    const std::string text = slurp(path);
    EXPECT_NE(text.find("# HELP apamm_counter_total"), std::string::npos);
    // The tmp staging file must not linger after a successful rename.
    EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
  }
  // Destructor publishes once more; the file survives the publisher.
  EXPECT_TRUE(fs::exists(path));
  fs::remove(path);
}

TEST(MetricsPublisher, PublishNowFailsIntoAMissingDirectory) {
  obs::MetricsPublisher publisher(
      "/nonexistent_apamm_dir/metrics.prom", 3600.0);
  EXPECT_FALSE(publisher.publish_now());
}

TEST(MetricsPublisher, PeriodicThreadRepublishes) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "APAMM_OBS=OFF";
  obs::set_enabled(true);
  const fs::path path = temp_file("apamm_snapshot_periodic_");
  fs::remove(path);
  {
    obs::MetricsPublisher publisher(path.string(), 0.05);
    APA_COUNTER_INC("test.prom_periodic");
    // The background thread must pick the counter up without publish_now().
    bool seen = false;
    for (int i = 0; i < 100 && !seen; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      seen = fs::exists(path) &&
             slurp(path).find("test.prom_periodic") != std::string::npos;
    }
    EXPECT_TRUE(seen);
  }
  fs::remove(path);
}

}  // namespace
