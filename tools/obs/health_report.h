#pragma once
// health_report: renders the numerical-health drift table from telemetry
// JSONL. Input is any file the obs::TelemetrySink wrote while an
// obs::HealthMonitor was attached — each `"type": "health"` line is one
// EWMA snapshot of a ⟨algo, M, K, N⟩ residual stream (obs/health.h). The
// report keeps the newest record per stream, remembers whether the stream
// ever flagged, and renders a fixed-width drift table.
//
// With --bounds=PATH (the `rule_lint --bounds-json` payload) each row also
// shows the rule's catalog σ/φ error bound, so drift is read against the one
// source of truth the guard tolerances derive from.

#include <map>
#include <string>
#include <vector>

namespace apa::obstools {

/// Latest state of one ⟨algo, M, K, N⟩ stream plus its history highlights.
struct HealthRow {
  std::string algo;
  long long m = 0, k = 0, n = 0;
  long long samples = 0;
  double last_ratio = 0.0;
  double ewma = 0.0;
  double slope = 0.0;
  double peak = 0.0;
  double bound = 0.0;       ///< runtime bound carried on the record
  bool drifting = false;    ///< per the newest record
  bool ever_flagged = false;
  long long drift_events = 0;  ///< "drift" flips seen in the stream
};

/// Catalog bound per rule name, from rule_lint --bounds-json.
struct RuleBounds {
  int precision_bits = 0;
  std::map<std::string, double> bound_1step;
};

/// Folds `jsonl` (one JSON record per line; non-health lines are skipped,
/// unparsable lines are counted into `*bad_lines` when non-null) into rows
/// sorted by (algo, m, k, n).
[[nodiscard]] std::vector<HealthRow> summarize_health(const std::string& jsonl,
                                                      int* bad_lines = nullptr);

/// Parses a rule_lint --bounds-json document. Returns false with `error` set
/// on malformed input.
bool parse_rule_bounds(const std::string& json, RuleBounds* out,
                       std::string* error);

/// Fixed-width drift table; `bounds` may be empty. Ends with a one-line
/// summary ("N stream(s), M drifting").
[[nodiscard]] std::string render_health_table(
    const std::vector<HealthRow>& rows, const RuleBounds& bounds);

/// True when any row is currently drifting (CI gate for --fail-on-drift).
[[nodiscard]] bool any_drifting(const std::vector<HealthRow>& rows);

}  // namespace apa::obstools
