#include "obs/json_min.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace apa::obstools {
namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  bool fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = "offset " + std::to_string(pos_) + ": " + message;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool value(JsonValue* out) {
    switch (peek()) {
      case '{':
        return object(out);
      case '[':
        return array(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return string(&out->str);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return literal("true", 4);
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return literal("false", 5);
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return literal("null", 4);
      default:
        return number(out);
    }
  }

  bool number(JsonValue* out) {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return fail("expected a value");
    // strtod reads past the view only if the buffer lacks a terminator;
    // callers hand whole files (NUL-free, terminator present via data()).
    const auto consumed = static_cast<std::size_t>(end - begin);
    if (pos_ + consumed > text_.size()) return fail("number overruns input");
    pos_ += consumed;
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    return true;
  }

  bool string(std::string* out) {
    if (peek() != '"') return fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape digit");
          }
          // The emitters only escape control characters (< 0x20); decode the
          // BMP code point as UTF-8 and call it done.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0u | (code >> 6)));
            out->push_back(static_cast<char>(0x80u | (code & 0x3Fu)));
          } else {
            out->push_back(static_cast<char>(0xE0u | (code >> 12)));
            out->push_back(static_cast<char>(0x80u | ((code >> 6) & 0x3Fu)));
            out->push_back(static_cast<char>(0x80u | (code & 0x3Fu)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!value(&element)) return false;
      out->array.push_back(std::move(element));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!value(&member)) return false;
      out->object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

void append_quoted(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json(const JsonValue& v, std::string& out) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += v.boolean ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber: {
      char buf[40];
      if (std::isfinite(v.number) &&
          v.number == std::floor(v.number) && std::fabs(v.number) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v.number));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v.number);
      }
      out += buf;
      return;
    }
    case JsonValue::Kind::kString:
      append_quoted(v.str, out);
      return;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& e : v.array) {
        if (!first) out += ',';
        first = false;
        append_json(e, out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : v.object) {
        if (!first) out += ',';
        first = false;
        append_quoted(key, out);
        out += ": ";
        append_json(member, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue* JsonValue::find(std::string_view key) {
  return const_cast<JsonValue*>(
      static_cast<const JsonValue*>(this)->find(key));
}

double JsonValue::num_or(double fallback) const {
  return kind == Kind::kNumber ? number : fallback;
}

long long JsonValue::int_or(long long fallback) const {
  return kind == Kind::kNumber ? static_cast<long long>(number) : fallback;
}

std::string JsonValue::str_or(const std::string& fallback) const {
  return kind == Kind::kString ? str : fallback;
}

bool JsonValue::bool_or(bool fallback) const {
  return kind == Kind::kBool ? boolean : fallback;
}

double JsonValue::get_num(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->num_or(fallback) : fallback;
}

long long JsonValue::get_int(std::string_view key, long long fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->int_or(fallback) : fallback;
}

std::string JsonValue::get_str(std::string_view key,
                               const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->str_or(fallback) : fallback;
}

bool parse_json(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  Parser parser(text, error);
  return parser.parse(out);
}

std::string to_json(const JsonValue& value) {
  std::string out;
  append_json(value, out);
  return out;
}

bool read_file(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace apa::obstools
