// health_report CLI: drift table from numerical-health telemetry JSONL.
//
//   ./build/tools/health_report metrics.jsonl
//   ./build/tools/health_report --bounds=bounds.json --fail-on-drift m.jsonl
//
// `--bounds` takes the `rule_lint --bounds-json` payload so each row shows
// the catalog σ/φ bound next to the runtime one. Exit status: 0 clean,
// 1 a stream is currently drifting and --fail-on-drift was given,
// 2 usage or I/O problem.

#include <cstdio>

#include "obs/health_report.h"
#include "obs/json_min.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace apa;
  const CliArgs args(argc, argv);

  // CliArgs accepts `--flag value`, so a bare `--fail-on-drift` followed by a
  // metrics path swallows that path as its "value". Reclaim it: any value
  // that is not a boolean literal is really the first positional input.
  bool fail_on_drift = args.get_bool("fail-on-drift");
  std::vector<std::string> inputs = args.positional();
  if (const std::string v = args.get("fail-on-drift", "");
      !v.empty() && !fail_on_drift) {
    inputs.insert(inputs.begin(), v);
    fail_on_drift = true;
  }

  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: health_report [--bounds=bounds.json] "
                 "[--fail-on-drift] metrics.jsonl ...\n");
    return 2;
  }

  obstools::RuleBounds bounds;
  if (const std::string bounds_path = args.get("bounds", "");
      !bounds_path.empty()) {
    std::string text;
    std::string error;
    if (!obstools::read_file(bounds_path, &text, &error) ||
        !obstools::parse_rule_bounds(text, &bounds, &error)) {
      std::fprintf(stderr, "health_report: %s\n", error.c_str());
      return 2;
    }
  }

  std::string jsonl;
  for (const std::string& path : inputs) {
    std::string text;
    std::string error;
    if (!obstools::read_file(path, &text, &error)) {
      std::fprintf(stderr, "health_report: %s\n", error.c_str());
      return 2;
    }
    jsonl += text;
    if (!jsonl.empty() && jsonl.back() != '\n') jsonl += '\n';
  }

  int bad_lines = 0;
  const auto rows = obstools::summarize_health(jsonl, &bad_lines);
  std::fputs(obstools::render_health_table(rows, bounds).c_str(), stdout);
  if (bad_lines > 0) {
    std::fprintf(stderr, "health_report: skipped %d unparsable line(s)\n",
                 bad_lines);
  }
  if (fail_on_drift && obstools::any_drifting(rows)) {
    return 1;
  }
  return 0;
}
