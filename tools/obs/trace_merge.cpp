#include "obs/trace_merge.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>

#include "obs/json_min.h"

namespace apa::obstools {
namespace {

struct LoadedTrace {
  int rank = 0;
  bool has_mark = false;  ///< clockSync.mark_us present (it may be negative)
  double mark_us = 0.0;
  double offset_us = 0.0;
  JsonValue doc;
};

struct MergedEvent {
  double sort_ts = 0.0;
  bool is_metadata = false;
  std::string json;
};

}  // namespace

bool merge_trace_files(const std::vector<std::string>& paths,
                       std::string* merged_json, TraceMergeStats* stats,
                       std::string* error) {
  *stats = TraceMergeStats{};
  if (paths.empty()) {
    if (error != nullptr) *error = "no input traces";
    return false;
  }

  std::vector<LoadedTrace> traces;
  traces.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::string text;
    std::string parse_error;
    if (!read_file(paths[i], &text, &parse_error)) {
      if (error != nullptr) *error = parse_error;
      return false;
    }
    LoadedTrace trace;
    if (!parse_json(text, &trace.doc, &parse_error)) {
      if (error != nullptr) *error = paths[i] + ": " + parse_error;
      return false;
    }
    if (!trace.doc.is_object() || trace.doc.find("traceEvents") == nullptr) {
      if (error != nullptr) *error = paths[i] + ": not a chrome trace file";
      return false;
    }
    trace.rank = static_cast<int>(trace.doc.get_int("rank", -1));
    if (const JsonValue* sync = trace.doc.find("clockSync");
        sync != nullptr && sync->is_object()) {
      trace.rank = static_cast<int>(sync->get_int("rank", trace.rank));
      if (const JsonValue* mark = sync->find("mark_us");
          mark != nullptr && mark->kind == JsonValue::Kind::kNumber) {
        trace.has_mark = true;
        trace.mark_us = mark->number;
      }
    }
    if (trace.rank < 0) trace.rank = static_cast<int>(i);
    traces.push_back(std::move(trace));
  }

  // Alignment: the earliest mark is the reference axis; every other marked
  // rank shifts back by its barrier-time skew. Unmarked ranks pass through.
  double min_mark = std::numeric_limits<double>::infinity();
  for (const LoadedTrace& t : traces) {
    if (t.has_mark && t.mark_us < min_mark) min_mark = t.mark_us;
  }
  for (LoadedTrace& t : traces) {
    if (t.has_mark && std::isfinite(min_mark)) {
      t.offset_us = t.mark_us - min_mark;
    } else {
      t.offset_us = 0.0;
      ++stats->ranks_without_mark;
    }
    stats->max_offset_us = std::max(stats->max_offset_us, t.offset_us);
  }

  std::vector<MergedEvent> events;
  std::set<long long> flow_out_ids;
  std::set<long long> flow_in_ids;
  double min_ts = std::numeric_limits<double>::infinity();
  for (LoadedTrace& trace : traces) {
    JsonValue* list = trace.doc.find("traceEvents");
    for (JsonValue& ev : list->array) {
      if (!ev.is_object()) continue;
      // One process lane per rank in the merged view.
      if (JsonValue* pid = ev.find("pid"); pid != nullptr) {
        pid->kind = JsonValue::Kind::kNumber;
        pid->number = static_cast<double>(trace.rank);
      }
      const std::string ph = ev.get_str("ph", "");
      MergedEvent merged;
      merged.is_metadata = ph == "M";
      if (JsonValue* ts = ev.find("ts");
          ts != nullptr && ts->kind == JsonValue::Kind::kNumber) {
        ts->number -= trace.offset_us;
        merged.sort_ts = ts->number;
        if (!merged.is_metadata) min_ts = std::min(min_ts, ts->number);
      }
      if (ph == "s" || ph == "f") {
        const long long id = ev.get_int("id", -1);
        (ph == "s" ? flow_out_ids : flow_in_ids).insert(id);
      }
      merged.json = to_json(ev);
      events.push_back(std::move(merged));
    }
  }

  // Rebase so the merged timeline starts at zero — clock corrections can pull
  // pre-barrier events of the reference rank negative, and the validators
  // (and some viewers) want a non-negative monotone axis. The shift is common
  // to every event, so it cannot reorder anything; it is applied by reprint,
  // so re-parse each event once.
  if (std::isfinite(min_ts) && min_ts != 0.0) {
    for (MergedEvent& ev : events) {
      JsonValue parsed;
      std::string parse_error;
      if (!parse_json(ev.json, &parsed, &parse_error)) continue;
      if (JsonValue* ts = parsed.find("ts");
          ts != nullptr && ts->kind == JsonValue::Kind::kNumber) {
        ts->number -= min_ts;
        ev.sort_ts = ts->number;
        ev.json = to_json(parsed);
      }
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     if (a.is_metadata != b.is_metadata) return a.is_metadata;
                     return a.sort_ts < b.sort_ts;
                   });

  for (const long long id : flow_out_ids) {
    if (flow_in_ids.count(id) > 0) {
      ++stats->flow_pairs;
    } else {
      ++stats->flow_unpaired;
    }
  }
  for (const long long id : flow_in_ids) {
    if (flow_out_ids.count(id) == 0) ++stats->flow_unpaired;
  }
  stats->files = static_cast<int>(traces.size());

  std::string out;
  out.reserve(events.size() * 96 + 512);
  out += "{\n\"displayTimeUnit\": \"ms\",\n\"clockSync\": [";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    char buf[128];
    if (traces[i].has_mark) {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"rank\": %d, \"mark_us\": %.3f, \"offset_us\": %.3f}",
                    i == 0 ? "" : ", ", traces[i].rank, traces[i].mark_us,
                    traces[i].offset_us);
    } else {
      std::snprintf(buf, sizeof(buf), "%s{\"rank\": %d, \"offset_us\": 0.0}",
                    i == 0 ? "" : ", ", traces[i].rank);
    }
    out += buf;
  }
  out += "],\n\"traceEvents\": [\n";
  bool first = true;
  for (const MergedEvent& ev : events) {
    if (!first) out += ",\n";
    first = false;
    out += ev.json;
    if (ev.is_metadata) {
      ++stats->metadata;
    } else {
      ++stats->events;
    }
  }
  out += "\n]\n}\n";
  *merged_json = std::move(out);
  return true;
}

bool merge_trace_files_to(const std::vector<std::string>& paths,
                          const std::string& out_path, TraceMergeStats* stats,
                          std::string* error) {
  std::string merged;
  if (!merge_trace_files(paths, &merged, stats, error)) return false;
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot write " + out_path;
    return false;
  }
  const bool ok = std::fwrite(merged.data(), 1, merged.size(), f) ==
                  merged.size();
  std::fclose(f);
  if (!ok && error != nullptr) *error = "short write to " + out_path;
  return ok;
}

}  // namespace apa::obstools
