// trace_merge CLI: fuse per-rank Chrome traces into one timeline.
//
//   ./build/tools/trace_merge --out=merged.json trace.rank0.json trace.rank1.json
//
// Exit status: 0 merged, 1 nothing merged / unpaired-flow threshold exceeded
// with --strict-flows, 2 usage or I/O problem.

#include <cstdio>

#include "obs/trace_merge.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace apa;
  const CliArgs args(argc, argv);
  const std::string out_path = args.get("out", "merged_trace.json");
  const bool strict_flows = args.get_bool("strict-flows");

  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: trace_merge [--out=merged.json] [--strict-flows] "
                 "trace.rank0.json trace.rank1.json ...\n");
    return 2;
  }

  obstools::TraceMergeStats stats;
  std::string error;
  if (!obstools::merge_trace_files_to(args.positional(), out_path, &stats,
                                      &error)) {
    std::fprintf(stderr, "trace_merge: %s\n", error.c_str());
    return 2;
  }
  std::printf(
      "trace_merge: %d file(s) -> %s: %zu event(s), %zu metadata, "
      "%d flow pair(s), %d unpaired, max clock offset %.1f us, "
      "%d rank(s) without a mark\n",
      stats.files, out_path.c_str(), stats.events, stats.metadata,
      stats.flow_pairs, stats.flow_unpaired, stats.max_offset_us,
      stats.ranks_without_mark);
  if (strict_flows && stats.flow_unpaired > 0) {
    std::fprintf(stderr, "trace_merge: %d unpaired flow event(s)\n",
                 stats.flow_unpaired);
    return 1;
  }
  return 0;
}
