#include "obs/health_report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>

#include "obs/json_min.h"

namespace apa::obstools {

std::vector<HealthRow> summarize_health(const std::string& jsonl,
                                        int* bad_lines) {
  std::map<std::tuple<std::string, long long, long long, long long>, HealthRow>
      streams;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue record;
    std::string error;
    if (!parse_json(line, &record, &error)) {
      if (bad_lines != nullptr) ++*bad_lines;
      continue;
    }
    if (record.get_str("type", "") != "health") continue;
    const std::string algo = record.get_str("algo", "?");
    const long long m = record.get_int("m", 0);
    const long long k = record.get_int("k", 0);
    const long long n = record.get_int("n", 0);
    HealthRow& row = streams[{algo, m, k, n}];
    row.algo = algo;
    row.m = m;
    row.k = k;
    row.n = n;
    row.samples = record.get_int("samples", row.samples);
    row.last_ratio = record.get_num("ratio", row.last_ratio);
    row.ewma = record.get_num("ewma", row.ewma);
    row.slope = record.get_num("slope", row.slope);
    row.peak = record.get_num("peak", row.peak);
    row.bound = record.get_num("bound", row.bound);
    const JsonValue* drifting = record.find("drifting");
    row.drifting = drifting != nullptr && drifting->bool_or(false);
    if (record.get_str("event", "") == "drift") ++row.drift_events;
    row.ever_flagged = row.ever_flagged || row.drifting;
  }
  std::vector<HealthRow> rows;
  rows.reserve(streams.size());
  for (auto& [key, row] : streams) rows.push_back(std::move(row));
  return rows;  // map order == (algo, m, k, n)
}

bool parse_rule_bounds(const std::string& json, RuleBounds* out,
                       std::string* error) {
  *out = RuleBounds{};
  JsonValue doc;
  if (!parse_json(json, &doc, error)) return false;
  if (!doc.is_object() || doc.find("rules") == nullptr ||
      !doc.find("rules")->is_array()) {
    if (error != nullptr) *error = "not a rule_lint bounds document";
    return false;
  }
  out->precision_bits = static_cast<int>(doc.get_int("precision_bits", 0));
  for (const JsonValue& rule : doc.find("rules")->array) {
    if (!rule.is_object()) continue;
    const std::string name = rule.get_str("name", "");
    if (name.empty()) continue;
    out->bound_1step[name] = rule.get_num("bound_1step", 0.0);
  }
  return true;
}

std::string render_health_table(const std::vector<HealthRow>& rows,
                                const RuleBounds& bounds) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-10s %6s %6s %6s %8s %9s %9s %9s %9s %11s %s\n",
                "algo", "m", "k", "n", "samples", "ratio", "ewma", "slope",
                "peak", "bound", "status");
  out += buf;
  int drifting = 0;
  for (const HealthRow& row : rows) {
    const char* status = row.drifting          ? "DRIFT"
                         : row.ever_flagged    ? "recovered"
                                               : "ok";
    if (row.drifting) ++drifting;
    std::snprintf(buf, sizeof(buf),
                  "%-10s %6lld %6lld %6lld %8lld %9.4f %9.4f %9.4f %9.4f %11.3e %s",
                  row.algo.c_str(), row.m, row.k, row.n, row.samples,
                  row.last_ratio, row.ewma, row.slope, row.peak, row.bound,
                  status);
    out += buf;
    if (const auto it = bounds.bound_1step.find(row.algo);
        it != bounds.bound_1step.end()) {
      // The catalog bound is absolute error; the record's `bound` is what the
      // guard actually used at the call. Print both so a tolerance drifted
      // away from the catalog shows up in the same row.
      std::snprintf(buf, sizeof(buf), "  (catalog %.3e)", it->second);
      out += buf;
    }
    out += '\n';
  }
  std::snprintf(buf, sizeof(buf), "%zu stream(s), %d drifting\n", rows.size(),
                drifting);
  out += buf;
  return out;
}

bool any_drifting(const std::vector<HealthRow>& rows) {
  return std::any_of(rows.begin(), rows.end(),
                     [](const HealthRow& row) { return row.drifting; });
}

}  // namespace apa::obstools
