#pragma once
// trace_merge: fuses per-rank Chrome trace files (obs::write_chrome_trace
// with TraceExportOptions{rank}) into one multi-process timeline.
//
// Each input carries a `clockSync` header — the rank's steady-clock mark
// taken while every worker sat at the same startup barrier (dist/trainer.cpp
// clock_sync) — so pairwise skew between files is bounded by the barrier
// release jitter. The merge:
//   * shifts every event by -(mark_r - min_mark) so all timelines share the
//     reference rank's axis, then rebases the result to start at ts = 0;
//   * rewrites pid to the rank, so the viewer shows one process lane per
//     worker with its ring sends ("s"/"f" flow arrows, ids stamped by
//     dist/transport.cpp) crossing between lanes;
//   * sorts events by timestamp (metadata first) and tallies how many flow
//     ids found both halves.
//
// Output schema: docs/OBSERVABILITY.md §Trace merge.

#include <string>
#include <vector>

namespace apa::obstools {

struct TraceMergeStats {
  int files = 0;
  std::size_t events = 0;        ///< non-metadata events written
  std::size_t metadata = 0;      ///< "M" records written
  int flow_pairs = 0;            ///< flow ids with both an "s" and an "f" half
  int flow_unpaired = 0;         ///< flow ids missing one half
  int ranks_without_mark = 0;    ///< inputs aligned with zero offset
  double max_offset_us = 0.0;    ///< largest clock correction applied
};

/// Merges `paths` (each a chrome_trace_json file) into one JSON document.
/// Returns false with `error` set on unreadable/unparsable input; per-file
/// context is included in the message.
bool merge_trace_files(const std::vector<std::string>& paths,
                       std::string* merged_json, TraceMergeStats* stats,
                       std::string* error);

/// merge_trace_files + write to `out_path`.
bool merge_trace_files_to(const std::vector<std::string>& paths,
                          const std::string& out_path, TraceMergeStats* stats,
                          std::string* error);

}  // namespace apa::obstools
