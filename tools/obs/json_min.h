#pragma once
// Minimal JSON reader for the observability tooling (trace_merge,
// health_report). The repo's obs layer only *writes* JSON (obs/json.h); the
// postmortem tools need to read back what the exporters produced — Chrome
// trace files, telemetry JSONL lines, rule_lint --bounds-json — so this is a
// small recursive-descent parser over exactly the JSON subset those emitters
// use (no surrogate-pair escapes, numbers via strtod). Not a general-purpose
// library; errors carry a byte offset for postmortem-grade diagnostics.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace apa::obstools {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  /// Insertion-ordered so re-serialized events keep their field order.
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] JsonValue* find(std::string_view key);

  // Typed accessors with fallbacks (wrong-kind values yield the fallback).
  [[nodiscard]] double num_or(double fallback) const;
  [[nodiscard]] long long int_or(long long fallback) const;
  [[nodiscard]] std::string str_or(const std::string& fallback) const;
  [[nodiscard]] bool bool_or(bool fallback) const;

  /// Member shorthand: value of `key` as a number/int/string, or fallback.
  [[nodiscard]] double get_num(std::string_view key, double fallback) const;
  [[nodiscard]] long long get_int(std::string_view key,
                                  long long fallback) const;
  [[nodiscard]] std::string get_str(std::string_view key,
                                    const std::string& fallback) const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage is
/// an error). Returns false and fills `error` ("offset N: message") on any
/// syntax problem.
bool parse_json(std::string_view text, JsonValue* out, std::string* error);

/// Re-serializes a value (compact, field order preserved, doubles printed
/// round-trip-exact or as integers when integral). The merge tool uses this
/// to emit events it only partially rewrote.
[[nodiscard]] std::string to_json(const JsonValue& value);

/// Reads a whole file; false (with `error` set) when unreadable.
bool read_file(const std::string& path, std::string* out, std::string* error);

}  // namespace apa::obstools
