// apamm-lint rule linter CLI (see rule_lint.h for the rule catalog).
//
//   ./build/tools/rule_lint                        # catalog + rules/ + drift
//   ./build/tools/rule_lint --rules-dir=rules --generated-dir=src/generated
//   ./build/tools/rule_lint path/to/table.rule     # lint specific files only
//
// Exit status: 0 clean (warnings allowed unless --strict), 1 errors found,
// 2 usage/setup problem. Every finding prints one line:
//   error[brent-violation] rules/foo.rule: foo: Brent equation violated at ...

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/rule_lint.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace apa;
  namespace fs = std::filesystem;
  const CliArgs args(argc, argv);
  const bool strict = args.get_bool("strict");

  // Bounds export mode: dump the catalog's σ/φ error-bound table as JSON
  // (the single source of truth tools/obs/health_report reads) and exit.
  if (const std::string bounds_path = args.get("bounds-json", "");
      !bounds_path.empty()) {
    const std::string json = lint::bounds_json();
    if (bounds_path == "-") {
      std::fputs(json.c_str(), stdout);
      return 0;
    }
    std::FILE* f = std::fopen(bounds_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "rule_lint: cannot write '%s'\n",
                   bounds_path.c_str());
      return 2;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("rule_lint: wrote catalog bounds to %s\n", bounds_path.c_str());
    return 0;
  }

  std::vector<lint::Finding> findings;
  const auto run = [&](const char* what, std::vector<lint::Finding> batch) {
    std::size_t errors = 0;
    for (const lint::Finding& f : batch) {
      if (f.severity == lint::Severity::kError) ++errors;
    }
    std::printf("-- %s: %zu finding(s), %zu error(s)\n", what, batch.size(), errors);
    findings.insert(findings.end(), batch.begin(), batch.end());
  };

  if (!args.positional().empty()) {
    for (const std::string& path : args.positional()) {
      run(path.c_str(), lint::lint_rule_file(path));
    }
  } else {
    if (args.get_bool("catalog", true)) {
      run("built-in catalog", lint::lint_catalog());
    }
    const std::string rules_dir = args.get("rules-dir", "rules");
    std::error_code ec;
    std::vector<fs::path> rule_files;
    for (const auto& entry : fs::directory_iterator(rules_dir, ec)) {
      if (entry.path().extension() == ".rule") rule_files.push_back(entry.path());
    }
    if (ec) {
      std::fprintf(stderr, "rule_lint: cannot open rules dir '%s': %s\n",
                   rules_dir.c_str(), ec.message().c_str());
      return 2;
    }
    std::sort(rule_files.begin(), rule_files.end());
    for (const fs::path& path : rule_files) {
      run(path.string().c_str(), lint::lint_rule_file(path.string()));
    }
    const std::string generated_dir = args.get("generated-dir", "src/generated");
    if (!generated_dir.empty()) {
      run("generated-code drift", lint::lint_generated(generated_dir));
    }
  }

  std::size_t errors = 0, warnings = 0;
  for (const lint::Finding& f : findings) {
    std::printf("%s\n", lint::format(f).c_str());
    if (f.severity == lint::Severity::kError) ++errors;
    if (f.severity == lint::Severity::kWarning) ++warnings;
  }
  std::printf("rule_lint: %zu error(s), %zu warning(s), %zu finding(s) total\n",
              errors, warnings, findings.size());
  const bool fail = errors > 0 || (strict && warnings > 0);
  return fail ? 1 : 0;
}
