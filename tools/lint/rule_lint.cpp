#include "lint/rule_lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include <cstdio>

#include "core/codegen.h"
#include "core/guard.h"
#include "core/params.h"
#include "core/registry.h"
#include "core/serialize.h"
#include "support/check.h"
#include "support/rational.h"

namespace apa::lint {
namespace {

using core::LaurentPoly;
using core::Rule;

void add(std::vector<Finding>& out, Severity severity, std::string code,
         std::string object, std::string message) {
  out.push_back({severity, std::move(code), std::move(object), std::move(message)});
}

/// Column l of a coefficient block as a dense vector over entries.
std::vector<const LaurentPoly*> column(const std::vector<LaurentPoly>& coeffs,
                                       index_t entries, index_t rank, index_t l) {
  std::vector<const LaurentPoly*> col;
  col.reserve(static_cast<std::size_t>(entries));
  for (index_t e = 0; e < entries; ++e) {
    col.push_back(&coeffs[static_cast<std::size_t>(e * rank + l)]);
  }
  return col;
}

bool column_is_zero(const std::vector<const LaurentPoly*>& col) {
  return std::all_of(col.begin(), col.end(),
                     [](const LaurentPoly* p) { return p->is_zero(); });
}

/// True when q == ratio * p with a single rational ratio (no lambda shift):
/// same degree support, entry-wise constant coefficient quotient.
bool poly_ratio(const LaurentPoly& p, const LaurentPoly& q, Rational& ratio,
                bool& ratio_set) {
  if (p.is_zero() || q.is_zero()) return p.is_zero() && q.is_zero();
  if (p.term_count() != q.term_count()) return false;
  for (const auto& [degree, coeff] : p.terms()) {
    const Rational other = q.coefficient(degree);
    if (other.is_zero()) return false;
    const Rational r = other / coeff;
    if (!ratio_set) {
      ratio = r;
      ratio_set = true;
    } else if (!(ratio == r)) {
      return false;
    }
  }
  return true;
}

/// True when the two factor columns are proportional by one rational constant.
bool columns_proportional(const std::vector<const LaurentPoly*>& x,
                          const std::vector<const LaurentPoly*>& y) {
  if (column_is_zero(x) || column_is_zero(y)) return false;
  Rational ratio(0);
  bool ratio_set = false;
  for (std::size_t e = 0; e < x.size(); ++e) {
    if (x[e]->is_zero() != y[e]->is_zero()) return false;
    if (x[e]->is_zero()) continue;
    if (!poly_ratio(*x[e], *y[e], ratio, ratio_set)) return false;
  }
  return true;
}

std::string product_name(index_t l) { return "M" + std::to_string(l + 1); }

/// Duplicate / proportional factor detection across products. `brent_failed`
/// escalates single-side duplicates from silence to errors: in a rule that
/// fails Brent, a shared factor is the signature of the published-table
/// transcription defect class (Bini <3,2,2> M10 duplicating M9's B-factor).
void check_duplicate_factors(const Rule& rule, bool brent_failed,
                             std::vector<Finding>& out) {
  const index_t a_entries = rule.m * rule.k;
  const index_t b_entries = rule.k * rule.n;
  for (index_t l1 = 0; l1 < rule.rank; ++l1) {
    const auto u1 = column(rule.u, a_entries, rule.rank, l1);
    const auto v1 = column(rule.v, b_entries, rule.rank, l1);
    for (index_t l2 = l1 + 1; l2 < rule.rank; ++l2) {
      const auto u2 = column(rule.u, a_entries, rule.rank, l2);
      const auto v2 = column(rule.v, b_entries, rule.rank, l2);
      const bool a_dup = columns_proportional(u1, u2);
      const bool b_dup = columns_proportional(v1, v2);
      const std::string locus =
          rule.name + ":" + product_name(l1) + "/" + product_name(l2);
      if (a_dup && b_dup) {
        add(out, Severity::kWarning, "duplicate-product", locus,
            "products " + product_name(l1) + " and " + product_name(l2) +
                " have proportional A- and B-factors; the rank is not minimal");
      } else if (brent_failed && (a_dup || b_dup)) {
        add(out, Severity::kError, "duplicate-factor", locus,
            std::string("products ") + product_name(l1) + " and " +
                product_name(l2) + " share a proportional " +
                (a_dup ? "A" : "B") +
                "-factor in a rule that fails the Brent equations — the "
                "transcription-defect signature (cf. the published Bini "
                "<3,2,2> M10 duplicating M9's B-factor, DESIGN.md)");
      }
    }
  }
}

void check_structure(const Rule& rule, std::vector<Finding>& out) {
  if (rule.m <= 0 || rule.k <= 0 || rule.n <= 0 || rule.rank <= 0) {
    add(out, Severity::kError, "rank-bounds", rule.name,
        "dimensions and rank must be positive");
    return;
  }
  const index_t trivial_upper = rule.m * rule.k * rule.n;
  const index_t trivial_lower =
      std::max({rule.m * rule.k, rule.k * rule.n, rule.m * rule.n});
  if (rule.rank > trivial_upper) {
    add(out, Severity::kError, "rank-bounds", rule.name,
        "rank " + std::to_string(rule.rank) + " exceeds the classical rank " +
            std::to_string(trivial_upper) + " for <" + std::to_string(rule.m) +
            "," + std::to_string(rule.k) + "," + std::to_string(rule.n) + ">");
  }
  if (rule.rank < trivial_lower) {
    add(out, Severity::kError, "rank-bounds", rule.name,
        "rank " + std::to_string(rule.rank) +
            " is below the trivial lower bound max(mk, kn, mn) = " +
            std::to_string(trivial_lower));
  }

  const index_t a_entries = rule.m * rule.k;
  const index_t b_entries = rule.k * rule.n;
  const index_t c_entries = rule.m * rule.n;
  for (index_t l = 0; l < rule.rank; ++l) {
    const bool a_zero = column_is_zero(column(rule.u, a_entries, rule.rank, l));
    const bool b_zero = column_is_zero(column(rule.v, b_entries, rule.rank, l));
    if (a_zero || b_zero) {
      add(out, Severity::kError, "degenerate-factor",
          rule.name + ":" + product_name(l),
          "product " + product_name(l) + " has an identically-zero " +
              (a_zero ? "A" : "B") + "-side combination");
    }
    const bool used = [&] {
      for (index_t e = 0; e < c_entries; ++e) {
        if (!rule.w[static_cast<std::size_t>(e * rule.rank + l)].is_zero()) {
          return true;
        }
      }
      return false;
    }();
    if (!used) {
      add(out, Severity::kWarning, "unused-product",
          rule.name + ":" + product_name(l),
          "product " + product_name(l) +
              " is not consumed by any output combination");
    }
  }
}

}  // namespace

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::vector<Finding> lint_rule(const Rule& rule, const Expectations& expected) {
  std::vector<Finding> out;
  check_structure(rule, out);
  if (has_errors(out)) {
    // Degenerate shapes make the symbolic checks meaningless; still run the
    // duplicate scan so a corrupted table gets its full diagnostic set.
    check_duplicate_factors(rule, /*brent_failed=*/true, out);
    return out;
  }

  if (expected.rank >= 0 && rule.rank != expected.rank) {
    add(out, Severity::kError, "rank-mismatch", rule.name,
        "built rank " + std::to_string(rule.rank) +
            " does not match declared rank " + std::to_string(expected.rank));
  }

  const core::Validation v = core::validate(rule);
  if (!v.valid) {
    add(out, Severity::kError, "brent-violation", rule.name, v.message);
  } else {
    const int sigma = v.sigma;
    const int phi = core::compute_phi(rule);
    if (expected.sigma >= 0 && sigma != expected.sigma) {
      add(out, Severity::kError, "sigma-mismatch", rule.name,
          "recomputed sigma = " + std::to_string(sigma) +
              " does not match declared sigma = " +
              std::to_string(expected.sigma));
    }
    if (expected.phi >= 0 && phi != expected.phi) {
      add(out, Severity::kError, "phi-mismatch", rule.name,
          "recomputed phi = " + std::to_string(phi) +
              " does not match declared phi = " + std::to_string(expected.phi));
    }
    if (v.exact && phi > 0) {
      add(out, Severity::kWarning, "phi-mismatch", rule.name,
          "rule is exact but carries negative lambda powers (phi = " +
              std::to_string(phi) + ")");
    }
  }
  check_duplicate_factors(rule, !v.valid, out);
  return out;
}

std::vector<Finding> lint_rule_file(const std::string& path) {
  std::vector<Finding> out;
  std::ifstream in(path);
  if (!in.good()) {
    add(out, Severity::kError, "parse-error", path, "cannot open file");
    return out;
  }

  // Declared metadata lines (optional `sigma` / `phi` tags, mandatory `rank`)
  // are extracted textually; the structural parse below re-reads the stream.
  Expectations expected;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;
    long value = 0;
    if (tag == "sigma" && (ls >> value)) expected.sigma = static_cast<int>(value);
    if (tag == "phi" && (ls >> value)) expected.phi = static_cast<int>(value);
    if (tag == "rank" && (ls >> value)) expected.rank = static_cast<index_t>(value);
  }
  in.clear();
  in.seekg(0);

  try {
    const Rule rule = core::read_rule(in, /*validate_brent=*/false);
    auto findings = lint_rule(rule, expected);
    for (Finding& f : findings) {
      f.object = path + ": " + f.object;
    }
    return findings;
  } catch (const ApaError& e) {
    add(out, Severity::kError, "parse-error", path, e.what());
    return out;
  }
}

const std::map<std::string, Expectations>& documented_expectations() {
  // Documented sigma/phi per catalog entry (catalog.h, registry.cpp
  // construction notes, DESIGN.md). Direct sums and tensor products with
  // exact rules preserve bini322's sigma = 1; phi adds across tensor factors.
  // The designer entries (apa433/apa552/apa555) pin the values their current
  // DP constructions produce — a construction change that shifts sigma or phi
  // must update this table (and the error-bound discussion in docs/THEORY.md).
  static const std::map<std::string, Expectations> kDocumented = {
      {"strassen", {7, 0, 0}},  {"winograd", {7, 0, 0}},
      {"bini322", {10, 1, 1}},  {"apa422", {14, 1, 1}},
      {"apa332", {16, 1, 1}},   {"apa522", {17, 1, 1}},
      {"apa722", {24, 1, 1}},   {"apa333", {25, 1, 1}},
      {"fast442", {28, 0, 0}},  {"apa433", {32, 1, 1}},
      {"apa552", {43, 1, 1}},   {"fast444", {49, 0, 0}},
      {"apa644", {70, 1, 1}},   {"apa664", {100, 1, 2}},
      {"apa555", {110, 1, 1}},
  };
  return kDocumented;
}

std::vector<Finding> lint_catalog() {
  const std::map<std::string, Expectations>& kDocumented =
      documented_expectations();
  std::vector<Finding> out;
  for (const core::AlgorithmInfo& info : core::list_algorithms()) {
    Expectations expected;
    expected.rank = info.rank;
    if (const auto it = kDocumented.find(info.name); it != kDocumented.end()) {
      expected.sigma = it->second.sigma;
      expected.phi = it->second.phi;
      if (it->second.rank != info.rank) {
        add(out, Severity::kError, "rank-mismatch", info.name,
            "registry rank " + std::to_string(info.rank) +
                " disagrees with the documented rank " +
                std::to_string(it->second.rank));
      }
    } else {
      add(out, Severity::kNote, "unpinned-metadata", info.name,
          "no documented sigma/phi to cross-check; add the entry to the "
          "linter's table once the construction is settled");
    }
    try {
      const Rule& rule = core::rule_by_name(info.name);
      auto findings = lint_rule(rule, expected);
      out.insert(out.end(), findings.begin(), findings.end());
    } catch (const ApaError& e) {
      add(out, Severity::kError, "parse-error", info.name, e.what());
    }
  }
  return out;
}

std::vector<RuleBound> catalog_bounds() {
  std::vector<RuleBound> out;
  const auto& documented = documented_expectations();
  for (const core::AlgorithmInfo& info : core::list_algorithms()) {
    RuleBound b;
    b.name = info.name;
    b.m = info.m;
    b.k = info.k;
    b.n = info.n;
    b.rank = info.rank;
    b.documented = documented.count(info.name) > 0;
    const core::AlgorithmParams params =
        core::analyze(core::rule_by_name(info.name));
    b.sigma = params.sigma;
    b.phi = params.phi;
    b.exact = params.exact;
    b.bound_1step = core::ProductGuard::model_error_bound(
        params, core::kPrecisionBitsSingle, 1);
    b.bound_2step = core::ProductGuard::model_error_bound(
        params, core::kPrecisionBitsSingle, 2);
    out.push_back(std::move(b));
  }
  return out;
}

std::string bounds_json() {
  std::ostringstream os;
  os << "{\"precision_bits\": " << core::kPrecisionBitsSingle
     << ", \"rules\": [\n";
  bool first = true;
  for (const RuleBound& b : catalog_bounds()) {
    if (!first) os << ",\n";
    first = false;
    char buf[64];
    os << "  {\"name\": \"" << b.name << "\", \"m\": " << b.m
       << ", \"k\": " << b.k << ", \"n\": " << b.n << ", \"rank\": " << b.rank
       << ", \"sigma\": " << b.sigma << ", \"phi\": " << b.phi
       << ", \"exact\": " << (b.exact ? "true" : "false")
       << ", \"documented\": " << (b.documented ? "true" : "false");
    std::snprintf(buf, sizeof(buf), "%.9e", b.bound_1step);
    os << ", \"bound_1step\": " << buf;
    std::snprintf(buf, sizeof(buf), "%.9e", b.bound_2step);
    os << ", \"bound_2step\": " << buf << "}";
  }
  os << "\n]}\n";
  return os.str();
}

std::vector<Finding> lint_generated(const std::string& generated_dir) {
  namespace fs = std::filesystem;
  std::vector<Finding> out;
  std::error_code ec;
  fs::directory_iterator dir(generated_dir, ec);
  if (ec) {
    add(out, Severity::kError, "generated-drift", generated_dir,
        "cannot open directory: " + ec.message());
    return out;
  }

  std::vector<fs::path> files;
  for (const auto& entry : dir) {
    if (entry.path().filename().string().ends_with("_generated.cpp")) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& path : files) {
    const std::string filename = path.filename().string();
    const std::string algo =
        filename.substr(0, filename.size() - std::string("_generated.cpp").size());
    if (!core::has_algorithm(algo)) {
      add(out, Severity::kWarning, "generated-drift", path.string(),
          "no registry algorithm named '" + algo + "' to regenerate from");
      continue;
    }
    const Rule& rule = core::rule_by_name(algo);
    // Same lambda policy as examples/codegen_tool: exact rules at lambda = 1,
    // APA rules at the single-precision optimum.
    const core::AlgorithmParams params = core::analyze(rule);
    core::CodegenOptions options;
    options.lambda =
        params.exact ? 1.0 : params.optimal_lambda(core::kPrecisionBitsSingle);
    const std::string regenerated = core::generate_cpp(rule, options);

    std::ifstream in(path);
    std::stringstream committed;
    committed << in.rdbuf();
    if (committed.str() == regenerated) continue;

    // Locate the first differing line for a precise diagnostic.
    std::istringstream a(committed.str()), b(regenerated);
    std::string la, lb;
    int line_no = 0;
    while (true) {
      ++line_no;
      const bool got_a = static_cast<bool>(std::getline(a, la));
      const bool got_b = static_cast<bool>(std::getline(b, lb));
      if (!got_a && !got_b) break;
      if (la != lb || got_a != got_b) break;
    }
    add(out, Severity::kError, "generated-drift", path.string(),
        "committed file differs from codegen output at line " +
            std::to_string(line_no) + " (committed: '" + la +
            "', regenerated: '" + lb + "'); refresh with ./build/examples/" +
            "codegen_tool --algo=" + algo + " --out=" + path.string());
  }
  if (files.empty()) {
    add(out, Severity::kError, "generated-drift", generated_dir,
        "no *_generated.cpp files found — wrong --generated-dir?");
  }
  return out;
}

bool has_errors(const std::vector<Finding>& findings) {
  return std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.severity == Severity::kError;
  });
}

std::string format(const Finding& finding) {
  std::ostringstream os;
  os << to_string(finding.severity) << "[" << finding.code << "] "
     << finding.object << ": " << finding.message;
  return os.str();
}

}  // namespace apa::lint
