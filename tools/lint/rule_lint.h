#pragma once
// Domain linter for bilinear matrix-multiplication rules (tools/rule_lint).
//
// The correctness of everything downstream — lambda* selection, the predicted
// error bound, the guard tolerances — rests on the (U, V, W) coefficient
// tables being transcribed exactly. This reproduction already found one
// published transcription defect by hand (the duplicated B-factor in Bini
// <3,2,2> M10, see DESIGN.md); the linter machine-checks that defect class and
// every structural invariant a rule must satisfy:
//
//   brent-violation    Brent equations re-verified symbolically over Q[L,L^-1]
//   sigma-mismatch     recomputed sigma differs from declared/catalog metadata
//   phi-mismatch       recomputed phi differs from declared/catalog metadata
//   rank-mismatch      built rank differs from declared/catalog metadata
//   rank-bounds        rank outside [max(mk,kn,mn), m*k*n]
//   degenerate-factor  a product whose A-side or B-side combination is zero
//   unused-product     a product no output combination consumes
//   duplicate-product  two products with proportional A- AND B-factors
//   duplicate-factor   two products sharing a proportional single-side factor
//                      in a rule that fails Brent (the M9/M10 defect class)
//   generated-drift    committed src/generated/*.cpp differs from regeneration
//
// Single-side duplicate factors are legal in valid rules (classical shares
// them by construction), so `duplicate-factor` only fires as supporting
// context for a Brent failure; `duplicate-product` (both sides proportional)
// is always reported since it means the rank is not minimal.

#include <map>
#include <string>
#include <vector>

#include "core/rule.h"

namespace apa::lint {

enum class Severity { kNote, kWarning, kError };

[[nodiscard]] const char* to_string(Severity s);

struct Finding {
  Severity severity = Severity::kError;
  std::string code;     ///< stable machine-readable id, e.g. "brent-violation"
  std::string object;   ///< rule name, file path, or "name:M<l>" locus
  std::string message;  ///< human-readable diagnostic
};

/// Declared metadata to cross-check against recomputed values; -1 disables the
/// corresponding check (sigma/phi of exact rules are declared as 0).
struct Expectations {
  index_t rank = -1;
  int sigma = -1;
  int phi = -1;
};

/// Structural and symbolic checks on one in-memory rule.
[[nodiscard]] std::vector<Finding> lint_rule(const core::Rule& rule,
                                             const Expectations& expected = {});

/// Loads `path` (serialize.h format), extracts any declared `sigma` / `phi` /
/// `rank` metadata lines, and lints the rule. Parse failures surface as a
/// single `parse-error` finding instead of an exception.
[[nodiscard]] std::vector<Finding> lint_rule_file(const std::string& path);

/// Lints every registry algorithm against its AlgorithmInfo rank and the
/// documented sigma/phi values (catalog.h, DESIGN.md).
[[nodiscard]] std::vector<Finding> lint_catalog();

/// The documented (rank, sigma, phi) table the catalog lint checks against —
/// the single source of truth for every rule's error model. Exposed so the
/// bounds export below (and tests) read the same values the linter enforces.
[[nodiscard]] const std::map<std::string, Expectations>&
documented_expectations();

/// One catalog rule's documented metadata plus its σ/φ-derived model error
/// bounds at single precision (core::ProductGuard::model_error_bound) — what
/// the guard tolerance and tools/obs/health_report derive from.
struct RuleBound {
  std::string name;
  index_t m = 0, k = 0, n = 0;
  index_t rank = 0;
  int sigma = 0;
  int phi = 0;
  bool exact = false;
  bool documented = false;  ///< false: not yet pinned in the linter's table
  double bound_1step = 0.0;  ///< model bound at 23 bits, one recursive step
  double bound_2step = 0.0;
};

/// Bounds for every registry algorithm, in catalog order.
[[nodiscard]] std::vector<RuleBound> catalog_bounds();

/// The same table rendered as a machine-readable JSON array — the
/// `rule_lint --bounds-json=PATH` payload consumed by health_report.
[[nodiscard]] std::string bounds_json();

/// Regenerates each committed kernel in `generated_dir` through core::codegen
/// with the same lambda policy as examples/codegen_tool and byte-diffs it
/// against the file on disk.
[[nodiscard]] std::vector<Finding> lint_generated(const std::string& generated_dir);

[[nodiscard]] bool has_errors(const std::vector<Finding>& findings);

/// One-line rendering: "error[brent-violation] bini322: ...".
[[nodiscard]] std::string format(const Finding& finding);

}  // namespace apa::lint
