#include "check/check.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <filesystem>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace apa::check {
namespace {

// ---------------------------------------------------------------------------
// Lexical layer: strip comments and literals, keep offsets stable.
// ---------------------------------------------------------------------------

/// Replaces comments, string literals, and char literals with spaces, byte
/// for byte, so token offsets/line numbers in the stripped text match the
/// original. Handles //, /* */, "...", '...', and R"delim(...)delim".
std::string strip(const std::string& text) {
  std::string out(text.size(), ' ');
  enum class St { kCode, kLine, kBlock, kStr, kChr, kRaw };
  St st = St::kCode;
  std::string raw_delim;  // the )delim" terminator of a raw string
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') out[i] = '\n';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          std::size_t p = i + 2;
          while (p < text.size() && text[p] != '(') ++p;
          raw_delim = ")" + text.substr(i + 2, p - (i + 2)) + "\"";
          st = St::kRaw;
          i = p;  // everything from R up to ( is blanked
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'') {
          st = St::kChr;
        } else {
          out[i] = c;
        }
        break;
      case St::kLine:
        if (c == '\n') st = St::kCode;
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          st = St::kCode;
          ++i;
        }
        break;
      case St::kStr:
        if (c == '\\') ++i;
        else if (c == '"') st = St::kCode;
        break;
      case St::kChr:
        if (c == '\\') ++i;
        else if (c == '\'') st = St::kCode;
        break;
      case St::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = St::kCode;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const auto nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `token` occurs in `line` with word boundaries on both sides.
bool has_token(const std::string& line, const std::string& token,
               std::size_t* pos_out = nullptr) {
  std::string::size_type pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) {
      if (pos_out != nullptr) *pos_out = pos;
      return true;
    }
    pos = end;
  }
  return false;
}

bool has_prefix(const std::string& path, const std::string& prefix) {
  if (path.size() < prefix.size()) return false;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  // "src/nn" must not match "src/nnx/..."; exact file paths match exactly.
  return path.size() == prefix.size() || path[prefix.size()] == '/' ||
         prefix.back() == '/';
}

bool in_any(const std::string& path, const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (has_prefix(path, p)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Function extraction (for R2's file-local call graph).
// ---------------------------------------------------------------------------

struct FuncDef {
  std::string name;       ///< unqualified name (last :: segment)
  int signature_line = 0; ///< 1-based line of the name token
  std::size_t body_begin = 0;  ///< offset of '{' in the stripped text
  std::size_t body_end = 0;    ///< offset one past the matching '}'
};

/// Finds function definitions by scanning the stripped text for
/// `identifier ( ... ) [trailing tokens] {` where the trailing tokens are
/// specifiers, attribute macros (their parenthesized arguments included), or
/// a constructor init list. Control-flow keywords are excluded, so `if (..) {`
/// never registers. Lexical by design: good enough to chain the dump/crash
/// paths, which is all R2 asks of it.
std::vector<FuncDef> find_functions(const std::string& stripped) {
  static const std::unordered_set<std::string> kNotNames = {
      "if",     "for",    "while",   "switch", "catch",  "return",
      "sizeof", "alignof", "decltype", "static_assert", "defined",
      "namespace", "struct", "class", "enum", "union", "new", "delete"};
  std::vector<FuncDef> defs;
  std::size_t i = 0;
  const std::size_t n = stripped.size();
  auto line_of = [&stripped](std::size_t off) {
    return 1 + static_cast<int>(
                   std::count(stripped.begin(), stripped.begin() +
                              static_cast<std::ptrdiff_t>(off), '\n'));
  };
  while (i < n) {
    if (!ident_char(stripped[i])) {
      ++i;
      continue;
    }
    const std::size_t name_begin = i;
    while (i < n && ident_char(stripped[i])) ++i;
    const std::string name = stripped.substr(name_begin, i - name_begin);
    // Skip whitespace between name and a candidate '('.
    std::size_t j = i;
    while (j < n && std::isspace(static_cast<unsigned char>(stripped[j]))) ++j;
    if (j >= n || stripped[j] != '(' || kNotNames.count(name) != 0) continue;
    // The char before the name must not be part of a larger token or a
    // member-access/operator context that cannot open a definition body.
    if (name_begin > 0) {
      const char prev = stripped[name_begin - 1];
      if (prev == '.' ) continue;  // member call, never a definition
    }
    // Balance the parameter list.
    int depth = 1;
    std::size_t k = j + 1;
    while (k < n && depth > 0) {
      if (stripped[k] == '(') ++depth;
      else if (stripped[k] == ')') --depth;
      ++k;
    }
    if (depth != 0) break;
    // Walk trailing tokens until '{' (definition) or a terminator.
    bool is_def = false;
    while (k < n) {
      const char c = stripped[k];
      if (std::isspace(static_cast<unsigned char>(c)) || ident_char(c) ||
          c == ':' || c == ',' || c == '&' || c == '*' || c == '<' ||
          c == '>' || c == '[' || c == ']' || c == '-') {
        ++k;
      } else if (c == '(') {  // attribute macro args or ctor init list
        int d = 1;
        ++k;
        while (k < n && d > 0) {
          if (stripped[k] == '(') ++d;
          else if (stripped[k] == ')') --d;
          ++k;
        }
      } else if (c == '{') {
        is_def = true;
        break;
      } else {
        break;  // ';' declaration, '=' initializer, anything else
      }
    }
    if (!is_def) continue;
    // Balance the body.
    std::size_t body_begin = k;
    int braces = 1;
    ++k;
    while (k < n && braces > 0) {
      if (stripped[k] == '{') ++braces;
      else if (stripped[k] == '}') --braces;
      ++k;
    }
    FuncDef def;
    def.name = name;
    def.signature_line = line_of(name_begin);
    def.body_begin = body_begin;
    def.body_end = k;
    defs.push_back(def);
    i = body_begin + 1;  // member functions inside this body still scanned
  }
  return defs;
}

// ---------------------------------------------------------------------------
// R2: async-signal-safety of marked call trees.
// ---------------------------------------------------------------------------

/// Identifiers that allocate, lock, throw, or enter stdio — none of which may
/// appear anywhere in a signal-path call tree. Matched with word boundaries
/// against stripped text, so `atexit` does not trip `exit` and a comment
/// mentioning malloc is invisible.
const std::unordered_set<std::string>& banned_signal_tokens() {
  static const std::unordered_set<std::string> kBanned = {
      // allocation
      "malloc", "calloc", "realloc", "free", "new", "delete", "string",
      "vector", "make_unique", "make_shared",
      // locks (a handler interrupting the holder self-deadlocks)
      "mutex", "Mutex", "MutexLock", "lock_guard", "unique_lock",
      "scoped_lock", "condition_variable", "CondVar",
      // C++ runtime control flow
      "throw",
      // stdio and process-level exits (write(2)/open/close/fsync are fine)
      "printf", "fprintf", "sprintf", "snprintf", "vsnprintf", "puts",
      "fputs", "fputc", "fwrite", "fread", "fopen", "fclose", "fflush",
      "exit", "cout", "cerr"};
  return kBanned;
}

void check_signal_paths(const std::string& path,
                        const std::vector<std::string>& raw_lines,
                        const std::string& stripped,
                        std::vector<Finding>* findings) {
  // Seed functions: first definition at or after each marker comment.
  std::vector<int> marker_lines;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    if (raw_lines[i].find("apamm-check: signal-path") != std::string::npos) {
      marker_lines.push_back(static_cast<int>(i) + 1);
    }
  }
  if (marker_lines.empty()) return;

  const std::vector<FuncDef> defs = find_functions(stripped);
  std::unordered_map<std::string, std::vector<const FuncDef*>> by_name;
  for (const FuncDef& def : defs) by_name[def.name].push_back(&def);

  std::set<const FuncDef*> closure;
  std::vector<const FuncDef*> queue;
  for (const int marker : marker_lines) {
    const FuncDef* best = nullptr;
    for (const FuncDef& def : defs) {
      if (def.signature_line >= marker &&
          def.signature_line <= marker + 8 &&
          (best == nullptr || def.signature_line < best->signature_line)) {
        best = &def;
      }
    }
    if (best == nullptr) {
      findings->push_back({"R2", path, marker,
                           "signal-path marker with no function definition "
                           "in the following 8 lines"});
      continue;
    }
    if (closure.insert(best).second) queue.push_back(best);
  }

  // Transitive closure over file-local calls: any `name(` in a body whose
  // name matches a definition in this file pulls that definition in.
  while (!queue.empty()) {
    const FuncDef* fn = queue.back();
    queue.pop_back();
    std::size_t i = fn->body_begin;
    while (i < fn->body_end) {
      if (!ident_char(stripped[i])) {
        ++i;
        continue;
      }
      const std::size_t begin = i;
      while (i < fn->body_end && ident_char(stripped[i])) ++i;
      std::size_t j = i;
      while (j < fn->body_end &&
             std::isspace(static_cast<unsigned char>(stripped[j]))) {
        ++j;
      }
      if (j >= fn->body_end || stripped[j] != '(') continue;
      const auto it = by_name.find(stripped.substr(begin, i - begin));
      if (it == by_name.end()) continue;
      for (const FuncDef* callee : it->second) {
        if (callee != fn && closure.insert(callee).second) {
          queue.push_back(callee);
        }
      }
    }
  }

  // Scan every body in the closure for banned identifiers.
  const auto& banned = banned_signal_tokens();
  for (const FuncDef* fn : closure) {
    std::size_t i = fn->body_begin;
    int line = 1 + static_cast<int>(std::count(
                   stripped.begin(),
                   stripped.begin() +
                       static_cast<std::ptrdiff_t>(fn->body_begin),
                   '\n'));
    while (i < fn->body_end) {
      const char c = stripped[i];
      if (c == '\n') {
        ++line;
        ++i;
        continue;
      }
      if (!ident_char(c)) {
        ++i;
        continue;
      }
      const std::size_t begin = i;
      while (i < fn->body_end && ident_char(stripped[i])) ++i;
      const std::string token = stripped.substr(begin, i - begin);
      if (banned.count(token) != 0) {
        findings->push_back(
            {"R2", path, line,
             "async-signal-unsafe token '" + token + "' in '" + fn->name +
                 "', which is reachable from a signal-path function"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R3: every mutex in an annotated module carries coverage or an escape.
// ---------------------------------------------------------------------------

void check_mutexes(const std::string& path,
                   const std::vector<std::string>& raw_lines,
                   const std::vector<std::string>& code_lines,
                   const std::string& stripped,
                   std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& line = code_lines[i];
    std::size_t pos = 0;
    std::string decl_name;
    if (has_token(line, "mutex", &pos) && pos >= 5 &&
        line.compare(pos - 5, 5, "std::") == 0) {
      findings->push_back({"R3", path, static_cast<int>(i) + 1,
                           "raw std::mutex; declare an apa::Mutex "
                           "(support/thread_annotations.h) so the "
                           "thread-safety build can check its discipline"});
      continue;
    }
    if (!has_token(line, "Mutex", &pos)) continue;
    // Declaration shape: `Mutex name` — a reference/pointer parameter or a
    // mention inside an attribute has no identifier directly after the type.
    std::size_t j = pos + 5;
    while (j < line.size() &&
           std::isspace(static_cast<unsigned char>(line[j]))) {
      ++j;
    }
    const std::size_t name_begin = j;
    while (j < line.size() && ident_char(line[j])) ++j;
    if (j == name_begin) continue;  // `Mutex&`, `Mutex*`, `Mutex {` ...
    decl_name = line.substr(name_begin, j - name_begin);
    // Coverage: some field in the same file is guarded by this mutex, or an
    // explicit escape comment sits on or within 8 lines above the decl.
    if (stripped.find("APAMM_GUARDED_BY(" + decl_name + ")") !=
            std::string::npos ||
        stripped.find("APAMM_PT_GUARDED_BY(" + decl_name + ")") !=
            std::string::npos) {
      continue;
    }
    bool allowed = false;
    for (std::size_t back = 0; back <= 8 && back <= i; ++back) {
      if (raw_lines[i - back].find("apamm-check-allow(R3)") !=
          std::string::npos) {
        allowed = true;
        break;
      }
    }
    if (allowed) continue;
    findings->push_back(
        {"R3", path, static_cast<int>(i) + 1,
         "mutex '" + decl_name +
             "' has no APAMM_GUARDED_BY coverage in this file; annotate "
             "the fields it protects or add an "
             "`// apamm-check-allow(R3): why` comment above it"});
  }
}

std::string read_file(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *ok = true;
  return buf.str();
}

}  // namespace

CheckOptions default_options() {
  CheckOptions options;
  // The audited APA surface: the algorithm core itself, the dispatching
  // backend, the Freivalds guard, and the router/calibrator that only ever
  // reach FastMatmul through guarded candidates.
  options.guard_allowlist = {
      "src/core",
      "src/nn/backend.h",
      "src/nn/backend.cpp",
      "src/nn/guarded_backend.h",
      "src/nn/guarded_backend.cpp",
      "src/tune/router.cpp",
      "src/tune/calibrate.cpp",
  };
  options.annotated_dirs = {"src/support", "src/nn", "src/dist", "src/obs",
                            "src/tune"};
  options.counter_impl_dirs = {"src/obs"};
  return options;
}

std::vector<Finding> check_source(const std::string& path,
                                  const std::string& text,
                                  const CheckOptions& options) {
  std::vector<Finding> findings;
  // The annotation shim defines the Mutex wrapper itself — its internal
  // std::mutex is the one place the raw type is the point.
  if (path == "src/support/thread_annotations.h") return findings;

  const std::string stripped = strip(text);
  const std::vector<std::string> raw_lines = split_lines(text);
  const std::vector<std::string> code_lines = split_lines(stripped);

  // R1 — guard bypass.
  if (options.fixture_mode || !in_any(path, options.guard_allowlist)) {
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      if (has_token(code_lines[i], "FastMatmul")) {
        findings.push_back(
            {"R1", path, static_cast<int>(i) + 1,
             "core::FastMatmul referenced outside the audited backend "
             "layers; route through MatmulBackend/GuardedBackend/"
             "TunedBackend or extend tools/check/guard_allowlist.txt"});
      }
    }
  }

  // R2 — async-signal-safety of marked call trees (any file can opt in).
  check_signal_paths(path, raw_lines, stripped, &findings);

  // R3 — mutex annotation coverage in the annotated modules.
  if (options.fixture_mode || in_any(path, options.annotated_dirs)) {
    check_mutexes(path, raw_lines, code_lines, stripped, &findings);
  }

  // R4 — counters through the registry macros only.
  if (options.fixture_mode || !in_any(path, options.counter_impl_dirs)) {
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      const bool counter = code_lines[i].find("Counter::intern") !=
                           std::string::npos;
      const bool histogram = code_lines[i].find("Histogram::intern") !=
                             std::string::npos;
      if (counter || histogram) {
        findings.push_back(
            {"R4", path, static_cast<int>(i) + 1,
             std::string(counter ? "Counter" : "Histogram") +
                 "::intern called directly; use APA_COUNTER_INC / "
                 "APA_COUNTER_ADD / APA_HISTOGRAM_RECORD so the intern is "
                 "cached per call site and gated on obs::enabled()"});
      }
    }
  }
  return findings;
}

std::vector<Finding> check_file(const std::string& abs_path,
                                const std::string& repo_rel,
                                const CheckOptions& options) {
  bool ok = false;
  const std::string text = read_file(abs_path, &ok);
  if (!ok) {
    return {{"R0", repo_rel, 0, "cannot read file"}};
  }
  return check_source(repo_rel, text, options);
}

std::vector<Finding> check_tree(const std::string& repo_root,
                                const std::vector<std::string>& roots,
                                const CheckOptions& options) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path abs = fs::path(repo_root) / root;
    std::error_code ec;
    if (fs::is_directory(abs, ec)) {
      for (fs::recursive_directory_iterator it(abs, ec), end; it != end;
           it.increment(ec)) {
        const fs::path& p = it->path();
        if (p.extension() == ".h" || p.extension() == ".cpp") {
          files.push_back(
              fs::relative(p, repo_root, ec).generic_string());
        }
      }
    } else {
      files.push_back(root);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  std::vector<Finding> findings;
  for (const std::string& rel : files) {
    const std::vector<Finding> batch = check_file(
        (fs::path(repo_root) / rel).string(), rel, options);
    findings.insert(findings.end(), batch.begin(), batch.end());
  }
  return findings;
}

std::string format(const Finding& finding) {
  std::ostringstream out;
  out << "error[" << finding.rule << "] " << finding.file;
  if (finding.line > 0) out << ":" << finding.line;
  out << ": " << finding.message;
  return out.str();
}

std::string baseline_key(const Finding& finding) {
  return finding.rule + " " + finding.file + " " + finding.message;
}

std::vector<std::string> load_baseline(const std::string& path) {
  std::vector<std::string> keys;
  std::ifstream in(path);
  for (std::string line; std::getline(in, line);) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    keys.push_back(line);
  }
  return keys;
}

std::vector<Finding> new_findings(const std::vector<Finding>& findings,
                                  const std::vector<std::string>& baseline) {
  const std::set<std::string> known(baseline.begin(), baseline.end());
  std::vector<Finding> fresh;
  for (const Finding& f : findings) {
    if (known.count(baseline_key(f)) == 0) fresh.push_back(f);
  }
  return fresh;
}

}  // namespace apa::check
