#pragma once
// Domain-invariant checker for the runtime's concurrency and observability
// contracts (tools/apamm_check). Complements the Clang thread-safety build
// (-DAPAMM_TSA=ON): the compiler proves lock discipline where annotations
// exist; this linter proves the *project conventions* that annotations cannot
// express — which layers may touch the APA fast path, which functions must
// stay async-signal-safe, that every mutex opts into annotation coverage, and
// that counters flow through the registry macros. Four rules:
//
//   R1  guard-bypass      core::FastMatmul referenced outside the audited
//                         backend layers (tools/check/guard_allowlist.txt).
//                         Everything else must route through MatmulBackend /
//                         GuardedBackend / TunedBackend so APA traffic is
//                         verified and quarantinable.
//   R2  signal-unsafe     a function marked `// apamm-check: signal-path`
//                         (or a same-file function it transitively calls)
//                         uses a token that allocates, locks, throws, or
//                         enters stdio — none of which are async-signal-safe.
//                         Seeds: the flight-recorder dump path and the
//                         telemetry crash-flush handlers.
//   R3  unguarded-mutex   a mutex declared in an annotated module
//                         (src/support, src/nn, src/dist, src/obs, src/tune)
//                         with no APAMM_GUARDED_BY coverage in its file and
//                         no `// apamm-check-allow(R3): why` escape comment;
//                         also any raw std::mutex there (use apa::Mutex so
//                         the thread-safety build can see it).
//   R4  raw-counter       obs::Counter/Histogram intern()ed directly outside
//                         src/obs instead of via APA_COUNTER_* /
//                         APA_HISTOGRAM_RECORD (the macros cache the intern
//                         per call site and respect obs::enabled()).
//
// The scanner is lexical but C++-aware: comments, string/char literals are
// stripped before token matching (a doc comment mentioning FastMatmul never
// fires), and R2 builds a file-local call graph from function definitions.
// Cross-file calls are outside its reach by design — the signal paths are
// deliberately self-contained single files, and the checker keeps them so.
//
// Findings print one per line — `error[R2] src/obs/flight.cpp:123: ...` — and
// CI diffs them against the committed tools/check/baseline.txt, so only NEW
// findings fail the build.

#include <string>
#include <vector>

namespace apa::check {

struct Finding {
  std::string rule;     ///< "R1".."R4"
  std::string file;     ///< repo-relative path
  int line = 0;         ///< 1-based; 0 when the finding is file-scoped
  std::string message;  ///< human-readable diagnostic
};

struct CheckOptions {
  /// R1: path prefixes (repo-relative) allowed to name core::FastMatmul.
  std::vector<std::string> guard_allowlist;
  /// R3 scope: path prefixes whose mutexes must carry annotation coverage.
  std::vector<std::string> annotated_dirs;
  /// R4 scope: path prefixes exempt from the raw-intern rule (the registry
  /// implementation itself).
  std::vector<std::string> counter_impl_dirs;
  /// Treat every scanned file as in scope for every rule — used by the
  /// negative-fixture gate, where the fixtures live under tests/.
  bool fixture_mode = false;
};

/// The committed project policy: allowlist/scopes matching the tree layout.
/// The CLI overlays tools/check/guard_allowlist.txt on top of this.
[[nodiscard]] CheckOptions default_options();

/// Lints one file's contents. `path` is the repo-relative path used for both
/// scoping decisions and reporting.
[[nodiscard]] std::vector<Finding> check_source(const std::string& path,
                                                const std::string& text,
                                                const CheckOptions& options);

/// Reads and lints one file on disk; `repo_rel` is how it is scoped/reported.
/// Unreadable files yield a single file-scoped "io-error" finding (rule "R0").
[[nodiscard]] std::vector<Finding> check_file(const std::string& abs_path,
                                              const std::string& repo_rel,
                                              const CheckOptions& options);

/// Walks `roots` (files or directories, repo-relative) under `repo_root` and
/// lints every .h/.cpp found, in sorted path order.
[[nodiscard]] std::vector<Finding> check_tree(
    const std::string& repo_root, const std::vector<std::string>& roots,
    const CheckOptions& options);

/// "error[R1] src/foo.cpp:12: message" — the stable one-line rendering.
[[nodiscard]] std::string format(const Finding& finding);

/// Baseline identity: rule + file + message, line number excluded so pure
/// line drift in an unrelated edit does not resurrect a baselined finding.
[[nodiscard]] std::string baseline_key(const Finding& finding);

/// Loads a baseline file (one baseline_key per line, '#' comments); a missing
/// file is an empty baseline.
[[nodiscard]] std::vector<std::string> load_baseline(const std::string& path);

/// Findings whose baseline_key is NOT in `baseline` — what CI fails on.
[[nodiscard]] std::vector<Finding> new_findings(
    const std::vector<Finding>& findings,
    const std::vector<std::string>& baseline);

}  // namespace apa::check
