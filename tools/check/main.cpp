// apamm_check CLI — domain-invariant checker (see check.h for the rules).
//
//   ./build/tools/apamm_check                              # scan src/
//   ./build/tools/apamm_check --root=/path/to/repo src tools
//   ./build/tools/apamm_check --fixture-mode=1 tests/fixtures/check/r1_guard_bypass.cpp
//   ./build/tools/apamm_check --write-baseline              # refresh baseline
//
// Findings are diffed against --baseline (default tools/check/baseline.txt):
// only findings absent from the baseline fail the run, so adopting a rule on
// a codebase with known debt is a one-commit operation and CI still catches
// every regression. Exit status: 0 clean (or fully baselined), 1 new
// findings, 2 usage/setup problem.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/check.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace apa;
  namespace fs = std::filesystem;
  const CliArgs args(argc, argv);

  const std::string root = args.get("root", ".");
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "apamm_check: --root '%s' is not a directory\n",
                 root.c_str());
    return 2;
  }

  check::CheckOptions options = check::default_options();
  options.fixture_mode = args.get_bool("fixture-mode");

  // The allowlist file extends (never replaces) the built-in policy, so the
  // committed file only needs to carry deliberate additions.
  const std::string allowlist_path =
      args.get("allowlist", "tools/check/guard_allowlist.txt");
  {
    std::ifstream in(fs::path(root) / allowlist_path);
    for (std::string line; std::getline(in, line);) {
      while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
        line.pop_back();
      }
      if (line.empty() || line[0] == '#') continue;
      options.guard_allowlist.push_back(line);
    }
  }

  std::vector<std::string> roots = args.positional();
  if (roots.empty()) roots = {"src"};

  const std::vector<check::Finding> findings =
      check::check_tree(root, roots, options);

  const std::string baseline_path =
      args.get("baseline", "tools/check/baseline.txt");
  const std::string baseline_abs = (fs::path(root) / baseline_path).string();

  if (args.get_bool("write-baseline")) {
    std::FILE* f = std::fopen(baseline_abs.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "apamm_check: cannot write '%s'\n",
                   baseline_abs.c_str());
      return 2;
    }
    std::fputs(
        "# apamm_check accepted-debt baseline. One baseline_key per line\n"
        "# (rule + file + message, line numbers excluded). CI fails only on\n"
        "# findings not listed here; regenerate with --write-baseline.\n",
        f);
    for (const check::Finding& finding : findings) {
      std::fprintf(f, "%s\n", check::baseline_key(finding).c_str());
    }
    std::fclose(f);
    std::printf("apamm_check: wrote %zu finding(s) to %s\n", findings.size(),
                baseline_abs.c_str());
    return 0;
  }

  const std::vector<check::Finding> fresh = check::new_findings(
      findings, check::load_baseline(baseline_abs));
  for (const check::Finding& finding : fresh) {
    std::printf("%s\n", check::format(finding).c_str());
  }
  const std::size_t baselined = findings.size() - fresh.size();
  std::printf("apamm_check: %zu new finding(s), %zu baselined\n", fresh.size(),
              baselined);
  return fresh.empty() ? 0 : 1;
}
